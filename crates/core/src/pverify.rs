//! Independent placement verifier.
//!
//! Re-checks a finished [`InstrumentedModule`] against the core
//! guarantee of the paper (§II-B): **the worst-case energy consumed
//! between any two consecutive checkpoints never exceeds `EB`**, over
//! every CFG path, call chain and loop iteration pattern. The verifier
//! shares no code with the placement analysis, so it catches analysis
//! bugs; it also powers ROCKCLIMB's pass 2 (adding checkpoints wherever
//! a stretch exceeds the budget) via [`patch_placement`].

use schematic_emu::{CheckpointSpec, InstrumentedModule};
use schematic_energy::{CostTable, Energy, MemClass};
use schematic_ir::{
    BlockId, Cfg, CheckpointId, Dominators, FuncId, Inst, LoopForest, Module, VarId,
};
use std::collections::HashMap;

/// One budget violation found by the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Function containing the violating stretch.
    pub func: FuncId,
    /// Block where the stretch's energy peaked.
    pub block: BlockId,
    /// Worst-case energy of the stretch.
    pub energy: Energy,
    /// Human-readable description.
    pub detail: String,
}

/// Per-function energy-flow facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FuncFlow {
    /// Whether the function contains any checkpoint (transitively).
    pub resets: bool,
    /// Worst-case energy from entry to the first checkpoint (whole body
    /// if checkpoint-free).
    pub entry: Energy,
    /// Worst-case energy from the last checkpoint to any exit.
    pub exit: Energy,
}

/// Verifier output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementReport {
    /// The largest inter-checkpoint stretch found anywhere (closing
    /// checkpoint costs included).
    pub max_interval: Energy,
    /// All stretches exceeding the budget.
    pub violations: Vec<Violation>,
    /// Per-function flow facts (indexed by [`FuncId`]).
    pub flows: Vec<FuncFlow>,
}

impl PlacementReport {
    /// Whether the placement is sound.
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Block shapes
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Boundary {
    /// A checkpoint intrinsic.
    Checkpoint {
        commit: Energy,
        resume: Energy,
        period: Option<u32>,
    },
    /// A call to a function that contains checkpoints.
    CallBarrier { entry: Energy, exit: Energy },
}

#[derive(Debug, Clone, Default)]
struct BlockShape {
    /// Segment energies: `segs[0]`, boundary 0, `segs[1]`, boundary 1, …
    segs: Vec<Energy>,
    bounds: Vec<Boundary>,
}

fn spec_words(module: &Module, spec: &CheckpointSpec, vars: &[VarId]) -> usize {
    let _ = spec;
    vars.iter().map(|v| module.var(*v).words).sum()
}

fn block_shape(
    im: &InstrumentedModule,
    table: &CostTable,
    flows: &[FuncFlow],
    fid: FuncId,
    b: BlockId,
) -> BlockShape {
    let module = &im.module;
    let func = module.func(fid);
    let alloc = im.plan.get(fid, b);
    let mem_of = |v: VarId| {
        if alloc.contains(v) && !module.var(v).pinned_nvm {
            MemClass::Vm
        } else {
            MemClass::Nvm
        }
    };
    let mut shape = BlockShape {
        segs: vec![Energy::ZERO],
        bounds: Vec::new(),
    };
    let push_boundary = |shape: &mut BlockShape, bnd: Boundary| {
        shape.bounds.push(bnd);
        shape.segs.push(Energy::ZERO);
    };
    for inst in &func.block(b).insts {
        let base = table.inst_cost(inst, mem_of).energy;
        *shape.segs.last_mut().expect("non-empty") += base;
        match inst {
            Inst::Checkpoint { id } | Inst::CondCheckpoint { id, .. } => {
                let period = match inst {
                    Inst::CondCheckpoint { period, .. } => Some(*period),
                    _ => None,
                };
                let spec = im
                    .spec(*id)
                    .cloned()
                    .unwrap_or_else(CheckpointSpec::registers_only);
                let commit = table
                    .checkpoint_commit_cost(spec_words(module, &spec, &spec.save_vars))
                    .energy;
                let resume = table
                    .checkpoint_resume_cost(spec_words(module, &spec, &spec.restore_vars))
                    .energy;
                push_boundary(
                    &mut shape,
                    Boundary::Checkpoint {
                        commit,
                        resume,
                        period,
                    },
                );
            }
            Inst::Call { func: callee, .. } => {
                let f = flows[callee.index()];
                if f.resets {
                    push_boundary(
                        &mut shape,
                        Boundary::CallBarrier {
                            entry: f.entry,
                            exit: f.exit,
                        },
                    );
                } else {
                    *shape.segs.last_mut().expect("non-empty") += f.entry;
                }
            }
            _ => {}
        }
    }
    *shape.segs.last_mut().expect("non-empty") += table.term_cost(&func.block(b).term).energy;
    shape
}

// ---------------------------------------------------------------------------
// Scope analysis
// ---------------------------------------------------------------------------

/// Result of flowing energy through a block or collapsed loop.
#[derive(Debug, Clone, Copy)]
struct NodeFlow {
    /// Any reset inside?
    resets: bool,
    /// Energy from node entry to its first reset (full cost if none).
    head: Energy,
    /// Energy from the last reset to the node's exit (== head if none).
    tail: Energy,
    /// Whether a reset-free pass through the node exists.
    free_pass: bool,
}

struct ScopeAnalyzer<'a> {
    im: &'a InstrumentedModule,
    table: &'a CostTable,
    eb: Energy,
    fid: FuncId,
    cfg: Cfg,
    forest: LoopForest,
    shapes: Vec<BlockShape>,
    loop_nodes: Vec<Option<NodeFlow>>,
    violations: Vec<Violation>,
    max_interval: Energy,
    /// Top-scope exit block carrying the worst last-reset-to-return
    /// energy (`FuncFlow::exit`); the entry function's final stretch is
    /// charged against the budget there.
    tail_block: BlockId,
}

impl<'a> ScopeAnalyzer<'a> {
    fn new(
        im: &'a InstrumentedModule,
        table: &'a CostTable,
        eb: Energy,
        flows: &'a [FuncFlow],
        fid: FuncId,
    ) -> Self {
        let func = im.module.func(fid);
        let cfg = Cfg::new(func);
        let dom = Dominators::new(&cfg);
        let forest = LoopForest::new(func, &cfg, &dom);
        let shapes = (0..func.blocks.len())
            .map(|i| block_shape(im, table, flows, fid, BlockId::from_usize(i)))
            .collect();
        ScopeAnalyzer {
            im,
            table,
            eb,
            fid,
            cfg,
            forest,
            shapes,
            loop_nodes: Vec::new(),
            violations: Vec::new(),
            max_interval: Energy::ZERO,
            tail_block: func.entry,
        }
    }

    fn note_interval(&mut self, block: BlockId, energy: Energy, what: &str) {
        self.max_interval = self.max_interval.max(energy);
        if energy > self.eb {
            self.violations.push(Violation {
                func: self.fid,
                block,
                energy,
                detail: format!("{what} needs {energy} > EB"),
            });
        }
    }

    /// Flows `B` (energy since last reset) through one block.
    ///
    /// Returns the outgoing `B`, whether any reset occurred, and the
    /// closing energy at the *first* reset (relative to `b_in`).
    fn through_block(
        &mut self,
        b: BlockId,
        b_in: Energy,
        cond_fires: bool,
        record: bool,
    ) -> (Energy, bool, Option<Energy>) {
        let shape = self.shapes[b.index()].clone();
        let mut cur = b_in + shape.segs[0];
        let mut reset = false;
        let mut first_closing = None;
        for (i, bound) in shape.bounds.iter().enumerate() {
            match bound {
                Boundary::Checkpoint {
                    commit,
                    resume,
                    period,
                } => {
                    let fires = period.is_none() || cond_fires;
                    if fires {
                        if record {
                            self.note_interval(b, cur + *commit, "interval closing at checkpoint");
                        }
                        if first_closing.is_none() {
                            first_closing = Some(cur + *commit);
                        }
                        cur = *resume;
                        reset = true;
                    }
                }
                Boundary::CallBarrier { entry, exit } => {
                    if record {
                        self.note_interval(
                            b,
                            cur + *entry,
                            "interval entering checkpointed callee",
                        );
                    }
                    if first_closing.is_none() {
                        first_closing = Some(cur + *entry);
                    }
                    cur = *exit;
                    reset = true;
                }
            }
            cur += shape.segs[i + 1];
        }
        (cur, reset, first_closing)
    }

    /// The innermost loop of `b` strictly below `scope`.
    fn top_loop_of(&self, b: BlockId, scope: Option<usize>) -> Option<usize> {
        let mut li = self.forest.innermost_of(b);
        let mut chosen = None;
        while let Some(i) = li {
            if Some(i) == scope {
                break;
            }
            chosen = Some(i);
            li = self.forest.loops[i].parent;
        }
        chosen
    }

    /// Analyzes one scope (a loop body or the whole function),
    /// returning its NodeFlow. Child loops must be analyzed first.
    fn analyze_scope(&mut self, scope: Option<usize>) -> NodeFlow {
        let func = self.im.module.func(self.fid);
        let scope_body: Option<std::collections::BTreeSet<BlockId>> =
            scope.map(|l| self.forest.loops[l].body.clone());
        let in_scope = move |b: BlockId| match &scope_body {
            None => true,
            Some(body) => body.contains(&b),
        };
        let entry = match scope {
            None => func.entry,
            Some(l) => self.forest.loops[l].header,
        };
        let header = match scope {
            None => None,
            Some(l) => Some(self.forest.loops[l].header),
        };

        // Node list: scope blocks not inside child loops, plus child
        // loop representatives (their headers stand for the whole loop).
        // Topological order via DFS on the collapsed graph.
        let mut order: Vec<BlockId> = Vec::new();
        let mut state: HashMap<BlockId, u8> = HashMap::new();
        let mut stack = vec![(entry, 0usize)];
        state.insert(entry, 1);
        let rep = |s: &Self, b: BlockId| -> BlockId {
            match s.top_loop_of(b, scope) {
                Some(l) => s.forest.loops[l].header,
                None => b,
            }
        };
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succ_blocks: Vec<BlockId> = match self.top_loop_of(b, scope) {
                Some(l) => {
                    // Successors leaving the child loop.
                    let mut out = Vec::new();
                    for &x in self.forest.loops[l].body.clone().iter() {
                        for &s in self.cfg.succs(x) {
                            if !self.forest.loops[l].contains(s) {
                                out.push(s);
                            }
                        }
                    }
                    out
                }
                None => self.cfg.succs(b).to_vec(),
            };
            let filtered: Vec<BlockId> = succ_blocks
                .into_iter()
                .filter(|&s| in_scope(s) && Some(s) != header.filter(|_| true))
                .map(|s| rep(self, s))
                .collect();
            if *next < filtered.len() {
                let s = filtered[*next];
                *next += 1;
                if !state.contains_key(&s) && s != entry {
                    state.insert(s, 1);
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
                stack.pop();
            }
        }
        order.reverse();

        // Forward pass: B = worst energy since last reset; A = worst
        // energy since scope entry on reset-free paths (None once every
        // path has reset).
        let mut b_val: HashMap<BlockId, Energy> = HashMap::new();
        let mut a_val: HashMap<BlockId, Option<Energy>> = HashMap::new();
        let mut head = Energy::ZERO; // scope entry → first reset
        let mut tail = Energy::ZERO; // last reset → scope exit
        let mut any_reset = false;
        let mut free_exit = false;

        // Incoming values per node (entry starts at zero).
        let mut out_b: HashMap<BlockId, Energy> = HashMap::new();
        let mut out_a: HashMap<BlockId, Option<Energy>> = HashMap::new();

        for &node in &order {
            let (in_b, in_a) = if node == rep(self, entry) {
                (Energy::ZERO, Some(Energy::ZERO))
            } else {
                (
                    b_val.get(&node).copied().unwrap_or(Energy::ZERO),
                    a_val.get(&node).copied().unwrap_or(None),
                )
            };

            // Pass through the node (block or child loop).
            let (nb, na, node_reset) = match self.top_loop_of(node, scope) {
                Some(l) => {
                    let nf = self.loop_nodes[l].expect("child loop analyzed");
                    if nf.resets {
                        self.note_interval(node, in_b + nf.head, "interval entering loop");
                        any_reset = true;
                        if let Some(a) = in_a {
                            head = head.max(a + nf.head);
                        }
                        let na = if nf.free_pass {
                            in_a.map(|a| a + nf.head + nf.tail)
                        } else {
                            None
                        };
                        (nf.tail, na, true)
                    } else {
                        (in_b + nf.head, in_a.map(|a| a + nf.head), false)
                    }
                }
                None => {
                    // Inside loop scopes conditional checkpoints are
                    // modelled as NOT firing (the k-iteration stretch is
                    // charged at the loop level); at top level they fire.
                    let cond_fires = scope.is_none();
                    let (nb, reset, first) = self.through_block(node, in_b, cond_fires, true);
                    if reset {
                        any_reset = true;
                        if let (Some(a), Some(first)) = (in_a, first) {
                            // Head segment: energy from scope entry to the
                            // block's first reset.
                            head = head.max(a + (first - in_b));
                        }
                    }
                    let na = if reset {
                        None
                    } else {
                        in_a.map(|a| nb - in_b + a)
                    };
                    (nb, na, reset)
                }
            };
            let _ = node_reset;
            out_b.insert(node, nb);
            out_a.insert(node, na);
            if std::env::var_os("SCHEMATIC_DEBUG_SCOPE").is_some() && scope.is_none() {
                eprintln!(
                    "[scope fn{} top] node={node:?} in_b={in_b} in_a={in_a:?} out_b={nb} out_a={na:?} head={head} tail={tail}",
                    self.fid.index()
                );
            }

            // Exits of the scope.
            let is_exit = match scope {
                None => {
                    self.im.module.func(self.fid).block(node).term.is_ret()
                        || self.top_loop_of(node, scope).is_some_and(|l| {
                            self.forest.loops[l]
                                .body
                                .iter()
                                .any(|&x| self.im.module.func(self.fid).block(x).term.is_ret())
                        })
                }
                Some(l) => {
                    let lp = &self.forest.loops[l];
                    lp.latches.contains(&node)
                        || self.cfg.succs(node).iter().any(|s| !lp.contains(*s))
                }
            };
            if is_exit {
                if scope.is_none() && nb >= tail {
                    self.tail_block = node;
                }
                tail = tail.max(nb);
                if let Some(a) = na {
                    head = head.max(a);
                    // Accumulation across iterations only matters on the
                    // *cycle*: a reset-free path to a latch. Reset-free
                    // paths that leave the loop do not recur.
                    let recurs = match scope {
                        None => true,
                        Some(l) => self.forest.loops[l].latches.contains(&node),
                    };
                    if recurs {
                        free_exit = true;
                    }
                }
            }

            // Propagate to successors inside the scope.
            let succ_reps: Vec<BlockId> = match self.top_loop_of(node, scope) {
                Some(l) => {
                    let mut out = Vec::new();
                    for &x in self.forest.loops[l].body.clone().iter() {
                        for &s in self.cfg.succs(x) {
                            if !self.forest.loops[l].contains(s) && in_scope(s) {
                                if Some(s) == header {
                                    continue;
                                }
                                out.push(rep(self, s));
                            }
                        }
                    }
                    out
                }
                None => self
                    .cfg
                    .succs(node)
                    .iter()
                    .copied()
                    .filter(|&s| in_scope(s) && Some(s) != header)
                    .map(|s| rep(self, s))
                    .collect(),
            };
            for s in succ_reps {
                let eb = b_val.entry(s).or_insert(Energy::ZERO);
                *eb = (*eb).max(nb);
                let ea = a_val.entry(s).or_insert(None);
                *ea = match (*ea, na) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (None, None) => None,
                    // A reset-free path may exist through either side.
                    (Some(x), None) => Some(x),
                    (None, Some(y)) => Some(y),
                };
            }
        }

        if !any_reset {
            // Whole scope is one segment.
            head = head.max(tail);
        }

        // Loop scopes: account iteration accumulation.
        if let Some(l) = scope {
            let lp = self.forest.loops[l].clone();
            // An unannotated loop has no trip bound: without a reset in
            // every iteration it can accumulate without limit, so assume
            // the worst (the pipeline rejects such modules upfront, but
            // `verify_placement` is public and must stay conservative).
            let max_iters = lp.max_iters.unwrap_or(u64::MAX).max(1);
            // Does the back edge carry a conditional checkpoint? After
            // instrumentation the conditional checkpoint lives in a
            // dedicated block on the latch→header edge, inside the loop;
            // it was already processed above (treated as firing).
            // Only conditional checkpoints sitting on THIS loop's back
            // edge bound its iteration accumulation (inner loops carry
            // their own, already accounted in their nodes).
            let cond_period = lp
                .body
                .iter()
                .filter(|&&x| x == lp.header || self.cfg.succs(x).contains(&lp.header))
                .flat_map(|&x| self.im.module.func(self.fid).block(x).insts.iter())
                .find_map(|i| match i {
                    Inst::CondCheckpoint { period, id } => Some((*period, *id)),
                    _ => None,
                });

            if free_exit {
                // A reset-free iteration exists: energy accumulates
                // across iterations, bounded by the conditional
                // checkpoint period (or the trip bound without one).
                let per_iter = tail; // worst B at latch from one pass
                let (iters, cond_commit) = match cond_period {
                    Some((k, id)) => {
                        let spec = self
                            .im
                            .spec(id)
                            .cloned()
                            .unwrap_or_else(CheckpointSpec::registers_only);
                        let commit = self
                            .table
                            .checkpoint_commit_cost(spec_words(
                                &self.im.module,
                                &spec,
                                &spec.save_vars,
                            ))
                            .energy;
                        (u64::from(k), commit)
                    }
                    None => (max_iters, Energy::ZERO),
                };
                // Cap astronomic bounds (unannotated loops assume
                // `u64::MAX` trips) so enclosing scopes can keep adding
                // without overflow; the cap still dwarfs any real budget.
                let accumulated = per_iter
                    .saturating_mul(iters)
                    .saturating_add(cond_commit)
                    .min(Energy::from_pj(u64::MAX / 4));
                self.note_interval(
                    lp.header,
                    accumulated,
                    &format!("loop accumulation over {iters} iteration(s)"),
                );
                return NodeFlow {
                    resets: any_reset || cond_period.is_some(),
                    head: if any_reset { head } else { accumulated },
                    tail: if any_reset { tail } else { accumulated },
                    free_pass: !any_reset && cond_period.is_none(),
                };
            }
            return NodeFlow {
                resets: any_reset || cond_period.is_some(),
                head,
                tail,
                free_pass: false,
            };
        }

        NodeFlow {
            resets: any_reset,
            head,
            tail,
            free_pass: free_exit && !any_reset,
        }
    }

    fn run(mut self) -> (FuncFlow, Vec<Violation>, Energy) {
        self.loop_nodes = vec![None; self.forest.len()];
        for l in self.forest.bottom_up() {
            let nf = self.analyze_scope(Some(l));
            self.loop_nodes[l] = Some(nf);
        }
        let top = self.analyze_scope(None);
        if std::env::var_os("SCHEMATIC_DEBUG").is_some() {
            eprintln!(
                "[verify] fn{}: resets={} entry={} exit={} loops={:?}",
                self.fid.index(),
                top.resets,
                top.head,
                top.tail,
                self.loop_nodes
            );
        }
        // Boot: the initial interval includes staging the boot set.
        if self.im.module.entry == Some(self.fid) {
            let words: usize = self
                .im
                .boot_restore
                .iter()
                .map(|v| self.im.module.var(*v).words)
                .sum();
            let boot = self.table.restore_words_cost(words).energy;
            self.note_interval(
                self.im.module.func(self.fid).entry,
                boot + top.head,
                "boot interval",
            );
            // Callee tails are charged at their callers (barrier exit),
            // but the entry function has no caller: its stretch from the
            // last checkpoint to program exit must fit the budget too.
            if top.resets {
                let tb = self.tail_block;
                self.note_interval(tb, top.tail, "final interval to program exit");
            }
        }
        (
            FuncFlow {
                resets: top.resets,
                entry: top.head,
                exit: top.tail,
            },
            self.violations,
            self.max_interval,
        )
    }
}

/// Verifies that every inter-checkpoint stretch of `im` fits `eb`.
pub fn verify_placement(im: &InstrumentedModule, table: &CostTable, eb: Energy) -> PlacementReport {
    let module = &im.module;
    let cg = schematic_ir::CallGraph::new(module);
    let order = cg
        .bottom_up_order(module)
        .expect("instrumented modules are non-recursive");
    let mut flows = vec![FuncFlow::default(); module.funcs.len()];
    let mut violations = Vec::new();
    let mut max_interval = Energy::ZERO;
    for fid in order {
        let analyzer = ScopeAnalyzer::new(im, table, eb, &flows, fid);
        let (flow, mut v, mi) = analyzer.run();
        flows[fid.index()] = flow;
        violations.append(&mut v);
        max_interval = max_interval.max(mi);
    }
    PlacementReport {
        max_interval,
        violations,
        flows,
    }
}

/// Greedy repair (the engine of ROCKCLIMB's pass 2, also used as the
/// pipeline's backstop): wherever the verifier finds a stretch above the
/// budget, insert a checkpoint at the start of the offending block and
/// re-verify, until sound or `max_rounds` is exhausted.
///
/// Inserted checkpoints save/restore the block's planned VM set (plus
/// registers). Returns the number of checkpoints added.
pub fn patch_placement(
    im: &mut InstrumentedModule,
    table: &CostTable,
    eb: Energy,
    max_rounds: usize,
) -> Result<usize, crate::error::PlacementError> {
    let mut added = 0;
    let mut last: Option<(FuncId, BlockId, Energy)> = None;
    for _ in 0..max_rounds {
        let report = verify_placement(im, table, eb);
        let Some(v) = report.violations.first() else {
            return Ok(added);
        };
        let stuck = last == Some((v.func, v.block, v.energy));
        last = Some((v.func, v.block, v.energy));
        if schematic_obs::enabled() {
            // Decision log: one event per repair round, carrying the
            // violation that drives the round's action.
            schematic_obs::count("patch/rounds", 1);
            schematic_obs::event(
                "patch_round",
                vec![
                    ("violations", (report.violations.len() as u64).into()),
                    ("func", u64::from(v.func.0).into()),
                    ("block", v.block.to_string().into()),
                    ("energy_pj", v.energy.as_pj().into()),
                    ("detail", v.detail.as_str().into()),
                    ("stuck", u64::from(stuck).into()),
                ],
            );
        }
        if stuck {
            // Inserting checkpoints did not move the needle: the stretch
            // is fed by a structure we cannot split (a barrier's exit or
            // an unsplittable commit). Escalate: halve every conditional
            // period in the function, then demote the largest VM
            // variable feeding the commit.
            let n_blocks = im.module.func(v.func).blocks.len();
            let mut acted = false;
            for bi in 0..n_blocks {
                for inst in im.module.func_mut(v.func).blocks[bi].insts.iter_mut() {
                    if let Inst::CondCheckpoint { period, .. } = inst {
                        if *period > 1 {
                            *period = (*period / 2).max(1);
                            acted = true;
                        }
                    }
                }
            }
            if !acted {
                let vars: Vec<VarId> = im.plan.get(v.func, v.block).iter().collect();
                if let Some(&biggest) = vars.iter().max_by_key(|&&v| im.module.var(v).words) {
                    demote_var(im, v.func, biggest);
                    acted = true;
                }
            }
            if !acted {
                // Splitting the violating block cannot help when the
                // oversized stretch is accumulated upstream by a
                // checkpoint-free loop that stays *just* under the budget
                // per se but leaves no headroom for the closing commit
                // (the loop's worst exit energy flows to wherever the
                // interval finally closes). Give the fattest such loop a
                // per-iteration reset.
                acted = split_feeding_loop(im, table, eb, v.func);
            }
            if !acted {
                break;
            }
            added += 1;
            continue;
        }
        if std::env::var_os("SCHEMATIC_DEBUG_PATCH").is_some() {
            eprintln!(
                "[patch] round: {} violations, first: fn{} {} {}",
                report.violations.len(),
                v.func.index(),
                v.block,
                v.detail
            );
        }
        // A stretch entering a checkpointed callee can only be shortened
        // inside the callee: tighten its conditional periods, else give
        // it an entry checkpoint.
        if v.detail.contains("entering checkpointed callee") {
            let callee = im
                .module
                .func(v.func)
                .block(v.block)
                .insts
                .iter()
                .find_map(|i| match i {
                    Inst::Call { func, .. } => Some(*func),
                    _ => None,
                });
            if let Some(callee) = callee {
                let mut acted = false;
                let n_blocks = im.module.func(callee).blocks.len();
                for bi in 0..n_blocks {
                    for inst in im.module.func_mut(callee).blocks[bi].insts.iter_mut() {
                        if let Inst::CondCheckpoint { period, .. } = inst {
                            if *period > 1 {
                                *period = (*period / 2).max(1);
                                acted = true;
                            }
                        }
                    }
                }
                if !acted {
                    // Entry checkpoint: the callee's head shrinks to the
                    // checkpoint overhead itself.
                    let entry = im.module.func(callee).entry;
                    let vars: Vec<VarId> = im.plan.get(callee, entry).iter().collect();
                    let id = CheckpointId::from_usize(im.checkpoints.len());
                    im.checkpoints.push(CheckpointSpec {
                        save_vars: vars.clone(),
                        restore_vars: vars,
                        kind: schematic_emu::CheckpointKind::Plain,
                    });
                    im.module
                        .func_mut(callee)
                        .block_mut(entry)
                        .insts
                        .insert(0, Inst::Checkpoint { id });
                }
                added += 1;
                continue;
            }
        }
        // A stretch entering a loop is shortened by a checkpoint on the
        // loop's entry edges (inserting at the header would fire every
        // iteration).
        if v.detail.contains("entering loop") {
            let func = im.module.func(v.func);
            let cfg = Cfg::new(func);
            let dom = Dominators::new(&cfg);
            let forest = LoopForest::new(func, &cfg, &dom);
            if let Some(lp) = forest.loops.iter().find(|l| l.header == v.block) {
                let preds: Vec<BlockId> = cfg
                    .preds(lp.header)
                    .iter()
                    .copied()
                    .filter(|p| !lp.contains(*p))
                    .collect();
                let body = lp.clone();
                let mut inserted = false;
                for p in preds {
                    let vars: Vec<VarId> = im.plan.get(v.func, v.block).iter().collect();
                    let id = CheckpointId::from_usize(im.checkpoints.len());
                    im.checkpoints.push(CheckpointSpec {
                        save_vars: vars.clone(),
                        restore_vars: vars,
                        kind: schematic_emu::CheckpointKind::Plain,
                    });
                    let target_plan = im.plan.get(v.func, body.header);
                    let nb = im.module.func_mut(v.func).split_edge(p, body.header);
                    im.module
                        .func_mut(v.func)
                        .block_mut(nb)
                        .insts
                        .push(Inst::Checkpoint { id });
                    im.plan.set(v.func, nb, target_plan);
                    inserted = true;
                }
                if inserted {
                    added += 1;
                    continue;
                }
            }
        }
        // A loop-accumulation violation is repaired by tightening the
        // periods of the conditional checkpoints inside the loop headed
        // at the violating block, proportionally to the overshoot.
        if v.detail.contains("loop accumulation") {
            let func = im.module.func(v.func);
            let cfg = Cfg::new(func);
            let dom = Dominators::new(&cfg);
            let forest = LoopForest::new(func, &cfg, &dom);
            let body: Vec<BlockId> = forest
                .loops
                .iter()
                .find(|l| l.header == v.block)
                .map(|l| l.body.iter().copied().collect())
                .unwrap_or_else(|| (0..func.blocks.len()).map(BlockId::from_usize).collect());
            let scale = |period: u32| -> u32 {
                let p = u128::from(period) * u128::from(eb.as_pj())
                    / u128::from(v.energy.as_pj().max(1));
                (p as u32).clamp(1, period.saturating_sub(1).max(1))
            };
            let mut tightened = false;
            for bi in body {
                let insts = &mut im.module.func_mut(v.func).blocks[bi.index()].insts;
                for inst in insts.iter_mut() {
                    if let Inst::CondCheckpoint { period, .. } = inst {
                        if *period > 1 {
                            *period = scale(*period);
                            tightened = true;
                        }
                    }
                }
            }
            if tightened {
                added += 1;
                continue;
            }
        }
        // If the block's planned VM set is too expensive to persist at a
        // checkpoint, demote its largest variable to NVM everywhere in
        // the function first (correctness requires every dirty VM
        // variable to be saved, so the set itself must shrink).
        let vars: Vec<VarId> = im.plan.get(v.func, v.block).iter().collect();
        let words: usize = vars.iter().map(|&v| im.module.var(v).words).sum();
        let commit = table.checkpoint_commit_cost(words).energy;
        if commit * 2 > eb && !vars.is_empty() {
            let biggest = *vars
                .iter()
                .max_by_key(|&&v| im.module.var(v).words)
                .expect("non-empty");
            demote_var(im, v.func, biggest);
            added += 1;
            continue;
        }
        // Otherwise insert a plain checkpoint into the block, at the
        // midpoint of its longest checkpoint-free instruction gap: that
        // shrinks head stretches, closing intervals and final intervals
        // alike, and repeated rounds converge like binary splitting on
        // fat, unsplit blocks (where start-of-block insertion would
        // loop forever once a checkpoint already sits at position 0).
        // A block with no gap at all (e.g. a dedicated conditional-
        // checkpoint block on a back edge) cannot absorb a split: the
        // oversized stretch lives in its predecessors, so split those.
        let mut acted = insert_midgap_checkpoint(im, v.func, v.block);
        if !acted {
            let cfg = Cfg::new(im.module.func(v.func));
            for p in cfg.preds(v.block).to_vec() {
                acted |= insert_midgap_checkpoint(im, v.func, p);
            }
        }
        if !acted {
            break;
        }
        added += 1;
    }
    let report = verify_placement(im, table, eb);
    if report.is_sound() {
        Ok(added)
    } else {
        Err(crate::error::PlacementError::Unsound {
            detail: report.violations[0].detail.clone(),
        })
    }
}

/// Inserts an every-`k`-iterations [`Inst::CondCheckpoint`] into the
/// body of the checkpoint-free loop with the largest worst-case
/// accumulation (per-iteration body energy × trip bound) anywhere in
/// `fid`. Returns `false` when every loop already resets (or the chosen
/// body block cannot be split).
///
/// This is the stuck-escalation of [`patch_placement`]: a stretch that
/// closes over budget can be fed by a loop whose own accumulation sits
/// *below* `EB` — never flagged as a loop violation, yet leaving no
/// headroom for the segments and commit that close the interval
/// downstream. The only placement that shrinks such a stretch is a
/// reset inside the feeding loop itself. An unconditional checkpoint
/// there is overkill, though: the loop accumulates only `per_iter` per
/// round, so resetting every `k = max(1, (EB/2) / per_iter)` iterations
/// caps the carried stretch at roughly half the budget (leaving the
/// other half for the downstream commit) while paying the save cost
/// `k`× less often. If half-budget spacing is still too coarse, the
/// stuck-escalation's period-halving pass tightens this same
/// checkpoint on later rounds.
fn split_feeding_loop(
    im: &mut InstrumentedModule,
    table: &CostTable,
    eb: Energy,
    fid: FuncId,
) -> bool {
    let func = im.module.func(fid);
    let cfg = Cfg::new(func);
    let dom = Dominators::new(&cfg);
    let forest = LoopForest::new(func, &cfg, &dom);
    let mut best: Option<(Energy, Energy, BlockId)> = None;
    for lp in &forest.loops {
        let resets = lp
            .body
            .iter()
            .any(|&b| func.block(b).insts.iter().any(Inst::is_checkpoint));
        if resets {
            continue;
        }
        let per_iter = lp
            .body
            .iter()
            .map(|&b| {
                let alloc = im.plan.get(fid, b);
                let mem_of = |v: VarId| {
                    if alloc.contains(v) && !im.module.var(v).pinned_nvm {
                        MemClass::Vm
                    } else {
                        MemClass::Nvm
                    }
                };
                func.block(b)
                    .insts
                    .iter()
                    .map(|i| table.inst_cost(i, mem_of).energy)
                    .fold(Energy::ZERO, |a, e| a + e)
                    + table.term_cost(&func.block(b).term).energy
            })
            .fold(Energy::ZERO, |a, e| a + e);
        let iters = lp.max_iters.unwrap_or(u64::MAX).max(1);
        let acc = per_iter.saturating_mul(iters);
        // Split the body block with the most instructions — the widest
        // gap, and never a bare latch or dedicated-checkpoint block.
        let target = lp
            .body
            .iter()
            .copied()
            .max_by_key(|&b| func.block(b).insts.len())
            .unwrap_or(lp.header);
        if best.is_none_or(|(e, _, _)| acc > e) {
            best = Some((acc, per_iter, target));
        }
    }
    match best {
        Some((_, per_iter, target)) => {
            let k = ((eb.0 / 2) / per_iter.0.max(1)).clamp(1, u64::from(u32::MAX)) as u32;
            insert_midgap(im, fid, target, Some(k))
        }
        None => false,
    }
}

/// Inserts a plain checkpoint at the midpoint of the longest
/// checkpoint-free instruction gap of `block`, saving/restoring the
/// block's planned VM set (plus registers). Returns `false` when the
/// block has no instruction to split around (nothing but checkpoints,
/// or empty), in which case nothing is inserted.
fn insert_midgap_checkpoint(im: &mut InstrumentedModule, fid: FuncId, block: BlockId) -> bool {
    insert_midgap(im, fid, block, None)
}

/// [`insert_midgap_checkpoint`] generalized over the checkpoint kind:
/// `period` of `Some(k)` inserts an every-`k`-firings
/// [`Inst::CondCheckpoint`] instead of an unconditional one.
fn insert_midgap(
    im: &mut InstrumentedModule,
    fid: FuncId,
    block: BlockId,
    period: Option<u32>,
) -> bool {
    let (gap, pos) = {
        let insts = &im.module.func(fid).block(block).insts;
        let mut best = (0usize, 0usize); // (gap length, midpoint)
        let mut prev = 0usize;
        for (p, inst) in insts.iter().enumerate() {
            if inst.is_checkpoint() {
                let gap = p - prev;
                if gap > best.0 {
                    best = (gap, prev + gap / 2);
                }
                prev = p + 1;
            }
        }
        let gap = insts.len() - prev;
        if gap > best.0 {
            best = (gap, prev + gap / 2);
        }
        best
    };
    if gap == 0 {
        return false;
    }
    let vars: Vec<VarId> = im.plan.get(fid, block).iter().collect();
    let id = CheckpointId::from_usize(im.checkpoints.len());
    im.checkpoints.push(CheckpointSpec {
        save_vars: vars.clone(),
        restore_vars: vars,
        kind: schematic_emu::CheckpointKind::Plain,
    });
    let inst = match period {
        Some(period) => Inst::CondCheckpoint { id, period },
        None => Inst::Checkpoint { id },
    };
    im.module
        .func_mut(fid)
        .block_mut(block)
        .insts
        .insert(pos, inst);
    true
}

/// Removes `var` from the function's allocation plan, all checkpoint
/// specs and the boot set — the variable lives in NVM from now on.
fn demote_var(im: &mut InstrumentedModule, func: FuncId, var: VarId) {
    let n_blocks = im.module.func(func).blocks.len();
    for bi in 0..n_blocks {
        let b = BlockId::from_usize(bi);
        let mut set = im.plan.get(func, b);
        if set.remove(var) {
            im.plan.set(func, b, set);
        }
    }
    for spec in &mut im.checkpoints {
        spec.save_vars.retain(|&x| x != var);
        spec.restore_vars.retain(|&x| x != var);
    }
    im.boot_restore.retain(|&x| x != var);
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_emu::{AllocationPlan, FailurePolicy};
    use schematic_ir::{CmpOp, FunctionBuilder, ModuleBuilder, Variable};

    fn straight_module(pairs: usize) -> Module {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        for _ in 0..pairs {
            let v = f.load_scalar(x);
            f.store_scalar(x, v);
        }
        f.ret(None);
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    fn bare(m: Module) -> InstrumentedModule {
        InstrumentedModule {
            technique: "test".into(),
            plan: AllocationPlan::all_nvm(&m),
            module: m,
            checkpoints: vec![],
            policy: FailurePolicy::WaitRecharge,
            boot_restore: vec![],
        }
    }

    #[test]
    fn small_program_in_budget_is_sound() {
        let im = bare(straight_module(5));
        let r = verify_placement(&im, &CostTable::msp430fr5969(), Energy::from_uj(4));
        assert!(r.is_sound(), "{:?}", r.violations);
        assert!(r.max_interval > Energy::ZERO);
        assert!(!r.flows[0].resets);
        assert_eq!(r.flows[0].entry, r.flows[0].exit);
    }

    #[test]
    fn oversized_stretch_is_flagged() {
        let im = bare(straight_module(100)); // ≈ 290 kpJ all-NVM
        let r = verify_placement(&im, &CostTable::msp430fr5969(), Energy::from_pj(50_000));
        assert!(!r.is_sound());
        assert!(r.max_interval > Energy::from_pj(50_000));
    }

    #[test]
    fn checkpoint_resets_the_stretch() {
        let mut m = straight_module(300);
        // Insert a checkpoint halfway.
        let mid = m.funcs[0].blocks[0].insts.len() / 2;
        m.funcs[0].blocks[0].insts.insert(
            mid,
            Inst::Checkpoint {
                id: CheckpointId(0),
            },
        );
        let mut im = bare(m);
        im.checkpoints.push(CheckpointSpec::registers_only());
        let table = CostTable::msp430fr5969();
        let full =
            verify_placement(&bare(straight_module(300)), &table, Energy::from_uj(1)).max_interval;
        let halved = verify_placement(&im, &table, Energy::from_uj(1)).max_interval;
        assert!(halved < full);
        let r = verify_placement(&im, &table, Energy::from_uj(1));
        assert!(r.flows[0].resets);
    }

    #[test]
    fn unbounded_loop_accumulation_is_flagged() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        let h = f.new_block("h");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.copy(0);
        f.br(h);
        f.switch_to(h);
        f.set_max_iters(h, 1000);
        let c = f.cmp(CmpOp::UGe, i, 1000);
        f.cond_br(c, exit, body);
        f.switch_to(body);
        for _ in 0..5 {
            let v = f.load_scalar(x);
            f.store_scalar(x, v);
        }
        let i2 = f.bin(schematic_ir::BinOp::Add, i, 1);
        f.copy_to(i, i2);
        f.br(h);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = bare(mb.finish(main));
        // One iteration fits easily, 1000 do not.
        let r = verify_placement(&im, &CostTable::msp430fr5969(), Energy::from_pj(100_000));
        assert!(!r.is_sound());
        assert!(r
            .violations
            .iter()
            .any(|v| v.detail.contains("loop accumulation")));
    }

    #[test]
    fn entry_tail_after_last_checkpoint_is_checked() {
        // checkpoint, then a long stretch to `ret`: the final interval
        // must be flagged even though no later checkpoint closes it.
        let mut m = straight_module(300);
        m.funcs[0].blocks[0].insts.insert(
            1,
            Inst::Checkpoint {
                id: CheckpointId(0),
            },
        );
        let mut im = bare(m);
        im.checkpoints.push(CheckpointSpec::registers_only());
        let r = verify_placement(&im, &CostTable::msp430fr5969(), Energy::from_pj(200_000));
        assert!(!r.is_sound());
        assert!(
            r.violations
                .iter()
                .any(|v| v.detail.contains("final interval")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn unannotated_loop_is_conservatively_unbounded() {
        // A loop without `max_iters` and without a per-iteration reset
        // must be rejected: its accumulation has no static bound.
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        let h = f.new_block("h");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.copy(0);
        f.br(h);
        f.switch_to(h);
        // no set_max_iters on purpose
        let c = f.cmp(CmpOp::UGe, i, 10);
        f.cond_br(c, exit, body);
        f.switch_to(body);
        let v = f.load_scalar(x);
        f.store_scalar(x, v);
        let i2 = f.bin(schematic_ir::BinOp::Add, i, 1);
        f.copy_to(i, i2);
        f.br(h);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = bare(mb.finish(main));
        let r = verify_placement(&im, &CostTable::msp430fr5969(), Energy::from_uj(4));
        assert!(!r.is_sound());
        assert!(r
            .violations
            .iter()
            .any(|v| v.detail.contains("loop accumulation")));
    }

    #[test]
    fn patch_fixes_oversized_stretches() {
        let mut im = bare(straight_module(300));
        let table = CostTable::msp430fr5969();
        let eb = Energy::from_pj(600_000);
        let added = patch_placement(&mut im, &table, eb, 100).unwrap();
        assert!(added > 0);
        let r = verify_placement(&im, &table, eb);
        assert!(r.is_sound(), "{:?}", r.violations);
        // Program still computes.
        let out = schematic_emu::run(&im, schematic_emu::RunConfig::default()).unwrap();
        assert!(out.completed());
    }

    #[test]
    fn feeding_loop_split_emits_periodic_cond_checkpoint() {
        // A checkpoint-free loop that accumulates under EB per
        // iteration: split_feeding_loop must give it an every-k
        // conditional reset, with k sized so ~k iterations stay within
        // half the budget (not an unconditional checkpoint, which
        // would pay the save cost every round).
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        let h = f.new_block("h");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.copy(0);
        f.br(h);
        f.switch_to(h);
        f.set_max_iters(h, 200);
        let c = f.cmp(CmpOp::UGe, i, 200);
        f.cond_br(c, exit, body);
        f.switch_to(body);
        for _ in 0..4 {
            let v = f.load_scalar(x);
            f.store_scalar(x, v);
        }
        let i2 = f.bin(schematic_ir::BinOp::Add, i, 1);
        f.copy_to(i, i2);
        f.br(h);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        let mut im = bare(mb.finish(main));
        let table = CostTable::msp430fr5969();
        let eb = Energy::from_uj(1);
        assert!(split_feeding_loop(&mut im, &table, eb, FuncId(0)));
        let periods: Vec<u32> = im.module.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|inst| match inst {
                Inst::CondCheckpoint { period, .. } => Some(*period),
                _ => None,
            })
            .collect();
        assert_eq!(periods.len(), 1, "exactly one conditional reset");
        assert!(periods[0] > 1, "period {} should amortize", periods[0]);
        // The inserted spec exists and the program still runs.
        assert_eq!(im.checkpoints.len(), 1);
        let out = schematic_emu::run(&im, schematic_emu::RunConfig::default()).unwrap();
        assert!(out.completed());
    }

    #[test]
    fn callee_flows_feed_callers() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut leaf = FunctionBuilder::new("leaf", 0);
        for _ in 0..10 {
            let v = leaf.load_scalar(x);
            leaf.store_scalar(x, v);
        }
        leaf.ret(None);
        let leaf = mb.func(leaf.finish());
        let mut f = FunctionBuilder::new("main", 0);
        f.call_void(leaf, vec![]);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = bare(mb.finish(main));
        let r = verify_placement(&im, &CostTable::msp430fr5969(), Energy::from_uj(4));
        assert!(r.is_sound());
        // Main's entry flow includes the callee's body.
        assert!(r.flows[1].entry > r.flows[0].entry);
    }
}
