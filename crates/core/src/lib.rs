//! # schematic-core
//!
//! The paper's contribution: **SCHEMATIC** — joint compile-time
//! checkpoint placement and VM/NVM memory allocation for intermittent
//! systems (CGO 2024).
//!
//! Given an IR module, a platform cost table, a capacitor budget `EB`
//! and a VM capacity `SVM`, [`compile`] produces an
//! [`schematic_emu::InstrumentedModule`] that:
//!
//! * **guarantees forward progress**: the worst-case energy between any
//!   two consecutive checkpoints never exceeds `EB`, so with a
//!   wait-until-recharged runtime no code is ever re-executed;
//! * **minimizes energy on hot paths**: checkpoints and per-interval
//!   variable allocations are chosen by shortest path over the Reachable
//!   Checkpoint Graph (§III-A), with the gain function of Eqs. 1–2
//!   deciding which variables earn their place in VM;
//! * **respects `SVM`**: the VM footprint never exceeds the platform's
//!   volatile memory.
//!
//! The pipeline follows the paper: profile paths by frequency
//! ([`profile`]), analyze functions bottom-up over the call graph and
//! loops bottom-up over the nesting forest ([`analyze`]), place
//! checkpoints per path via the RCG with gain-based allocation, handle
//! loop back-edges with conditional checkpointing (Algorithm 1), and
//! finally rewrite the module ([`transform`]). An independent energy
//! verifier ([`pverify`]) re-checks the final placement and repairs any
//! interval the greedy path analysis missed.
//!
//! ```
//! use schematic_core::{compile, SchematicConfig};
//! use schematic_emu::{run, RunConfig};
//! use schematic_energy::{CostTable, Energy};
//!
//! let module = schematic_ir::parse_module(r#"
//! var @x : 1
//! func @main(0) {
//! entry:
//!   r0 = load @x
//!   r1 = add r0, 1
//!   store @x, r1
//!   ret r1
//! }
//! "#).unwrap();
//! let table = CostTable::msp430fr5969();
//! let config = SchematicConfig::new(Energy::from_uj(4));
//! let compiled = compile(&module, &table, &config)?;
//! let out = run(&compiled.instrumented, RunConfig::default()).unwrap();
//! assert_eq!(out.result, Some(1));
//! # Ok::<(), schematic_core::PlacementError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analyze;
pub mod anomaly;
pub mod config;
mod ctx;
pub mod error;
mod gain;
pub mod pipeline;
pub mod profile;
pub mod pverify;
pub mod range;
mod rcg;
pub mod summary;
pub mod transform;

pub use analyze::{check_all, SoundnessReport};
pub use anomaly::{
    check_anomalies, check_anomalies_bounded, potential_war_vars, Anomaly, AnomalyReport,
    RegionAccess, RegionClass, RegionInfo, RegionStart,
};
pub use config::SchematicConfig;
pub use error::{BackEdgeCheckpoint, EdgeDecision, PlacementError};
pub use pipeline::{compile, compile_with_profile, Compiled};
pub use profile::Profile;
pub use pverify::{verify_placement, PlacementReport};
pub use range::{index_ranges, Footprint, IndexRanges, Range};
pub use summary::{FuncSummary, LoopSummary};
