//! Path profiling (§III-A.3).
//!
//! SCHEMATIC prioritizes paths by execution frequency, gathered from
//! emulator traces. A trace is the flat `(FuncId, BlockId)` sequence of
//! one continuous-power run; per-function paths are extracted by
//! filtering to one function's blocks and cutting at back-edges (so
//! every path is acyclic), then ranked by decreasing frequency.

use schematic_emu::{InstrumentedModule, Machine, RunConfig};
use schematic_energy::CostTable;
use schematic_ir::{paths_from_trace, BlockId, Cfg, Dominators, FuncId, LoopForest, Module, Path};
use std::collections::HashMap;

/// Ranked execution paths per function.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    per_func: HashMap<FuncId, Vec<(Path, u64)>>,
}

impl Profile {
    /// Builds an empty profile (structural coverage only).
    pub fn empty() -> Self {
        Profile::default()
    }

    /// Extracts per-function paths from one flat trace.
    pub fn from_trace(module: &Module, trace: &[(FuncId, BlockId)]) -> Self {
        let mut p = Profile::default();
        p.add_trace(module, trace);
        p
    }

    /// Merges one more trace into the profile.
    pub fn add_trace(&mut self, module: &Module, trace: &[(FuncId, BlockId)]) {
        for (fid, _) in module.iter_funcs() {
            let blocks: Vec<BlockId> = trace
                .iter()
                .filter(|(f, _)| *f == fid)
                .map(|(_, b)| *b)
                .collect();
            if blocks.is_empty() {
                continue;
            }
            let func = module.func(fid);
            let cfg = Cfg::new(func);
            let dom = Dominators::new(&cfg);
            let forest = LoopForest::new(func, &cfg, &dom);
            let paths = paths_from_trace(&blocks, |from, to| {
                cfg.has_edge(from, to) && !forest.is_back_edge(from, to)
            });
            let entry = self.per_func.entry(fid).or_default();
            for path in paths {
                match entry.iter_mut().find(|(p, _)| *p == path) {
                    Some((_, n)) => *n += 1,
                    None => entry.push((path, 1)),
                }
            }
        }
        // Keep ranked by decreasing frequency; ties broken by longer
        // paths first (they constrain more).
        for paths in self.per_func.values_mut() {
            paths.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.len().cmp(&a.0.len())));
        }
    }

    /// Collects a profile by running `module` under continuous power
    /// `runs` times with tracing. Runs are deterministic, so additional
    /// runs of the *same* module reinforce the same paths; callers
    /// wanting input diversity pass sibling modules built from different
    /// seeds via repeated [`Profile::add_trace`].
    pub fn collect(module: &Module, table: &CostTable, runs: usize) -> Self {
        let im = InstrumentedModule::bare(module.clone());
        let mut profile = Profile::default();
        // Bound the profiling run: path frequencies stabilize long
        // before the default 2-billion-cycle emulator budget, and an
        // unbounded (or very long) program must not hang compilation.
        let cfg = RunConfig {
            max_active_cycles: 20_000_000,
            ..RunConfig::profiling()
        };
        let out = Machine::new(&im, table, cfg)
            .run()
            .expect("profiling run must not trap");
        profile.add_trace(module, &out.trace);
        // Continuous-power runs of a fixed module are deterministic, so
        // the remaining `runs − 1` traces would be identical — scale the
        // counts instead of re-emulating.
        let reps = runs.max(1) as u64;
        if reps > 1 {
            for paths in profile.per_func.values_mut() {
                for (_, n) in paths.iter_mut() {
                    *n *= reps;
                }
            }
        }
        profile
    }

    /// Ranked `(path, count)` pairs for a function (empty slice if the
    /// function never executed).
    pub fn paths(&self, f: FuncId) -> &[(Path, u64)] {
        self.per_func.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of distinct paths across all functions.
    pub fn len(&self) -> usize {
        self.per_func.values().map(Vec::len).sum()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_ir::{CmpOp, FunctionBuilder, ModuleBuilder, Variable};

    fn looped_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.copy(0);
        f.br(header);
        f.switch_to(header);
        f.set_max_iters(header, 4);
        let c = f.cmp(CmpOp::SGe, i, 3);
        f.cond_br(c, exit, body);
        f.switch_to(body);
        let v = f.load_scalar(x);
        f.store_scalar(x, v);
        let i2 = f.bin(schematic_ir::BinOp::Add, i, 1);
        f.copy_to(i, i2);
        f.br(header);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    #[test]
    fn collect_ranks_loop_paths_by_frequency() {
        let m = looped_module();
        let profile = Profile::collect(&m, &CostTable::msp430fr5969(), 2);
        let main = m.entry_func();
        let paths = profile.paths(main);
        assert!(!paths.is_empty());
        // The (header, body) path repeats 3x per run, making it the most
        // frequent; the entry prefix and the exit path occur once each.
        assert!(paths[0].1 >= paths.last().unwrap().1);
        let hot = &paths[0].0;
        assert!(hot.blocks().contains(&BlockId(1)));
        assert!(!profile.is_empty());
        assert!(profile.len() >= 2);
    }

    #[test]
    fn from_trace_cuts_at_back_edges() {
        let m = looped_module();
        let main = m.entry_func();
        let h = BlockId(1);
        let b = BlockId(2);
        let trace = vec![
            (main, BlockId(0)),
            (main, h),
            (main, b),
            (main, h),
            (main, b),
            (main, h),
            (main, BlockId(3)),
        ];
        let p = Profile::from_trace(&m, &trace);
        let paths = p.paths(main);
        // Paths: [entry,h,b] once, [h,b] once, [h,exit] once.
        assert_eq!(paths.iter().map(|(_, n)| *n).sum::<u64>(), 3);
        for (path, _) in paths {
            // All acyclic.
            let mut seen = std::collections::HashSet::new();
            assert!(path.blocks().iter().all(|b| seen.insert(*b)));
        }
    }

    #[test]
    fn unexecuted_function_has_no_paths() {
        let m = looped_module();
        let p = Profile::empty();
        assert!(p.paths(m.entry_func()).is_empty());
    }
}
