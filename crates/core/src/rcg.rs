//! The Reachable Checkpoint Graph (§III-A.1).
//!
//! For one analyzed path, the RCG's nodes are the path's *potential
//! checkpoint locations* (its CFG edges) plus virtual `Start`/`End`
//! nodes; already-enabled checkpoints and barrier items (checkpointed
//! callees/loops) are **mandatory waypoints**. An RCG edge `(c1, c2)`
//! exists when the interval between the two locations can execute within
//! the energy budget `EB` under its best memory allocation; its weight
//! is the full energy of the interval (restore at `c1` + execution +
//! save at `c2`). The cheapest `Start → End` path simultaneously fixes
//! where checkpoints go and which variables live in VM in each interval.

use crate::ctx::{FuncCtx, Item, ItemPath};
use crate::gain::{select_allocation, IntervalBounds};
use schematic_energy::Energy;
use schematic_ir::{AccessCount, VarId, VarSet};
use std::collections::HashMap;

/// Environment of one path analysis.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PathEnv {
    /// `true` when the path starts at the program entry: the boot-time
    /// restore of the first interval's VM set is charged to the first
    /// interval.
    pub boot: bool,
    /// Energy that must remain when the path's end is reached
    /// (`EB − Eto_leave` criterion for edges into `End`, §III-A.3).
    pub end_demand: Energy,
    /// Multiplier applied to access counts when selecting allocations
    /// (loop-body regions scale by the trip count so per-iteration gains
    /// accumulate, cf. the motivating example of §II-A).
    pub access_scale: u64,
    /// For loop-body regions: the loop header and a back-edge. The
    /// region's `Start`/`End` then behave like a (potential) back-edge
    /// checkpoint — its restore/save costs are charged and bounded, so
    /// the body allocation never grows beyond what a conditional
    /// checkpoint could afford to persist (Algorithm 1).
    pub loop_boundary: Option<(schematic_ir::BlockId, schematic_ir::Edge)>,
    /// For the top level of a *callee* function: its VM set is staged by
    /// the caller's surrounding checkpoints (§III-B.1), so `Start`/`End`
    /// charge and bound the full save/restore of the chosen allocation.
    pub callee_boundary: bool,
}

impl Default for PathEnv {
    fn default() -> Self {
        PathEnv {
            boot: false,
            end_demand: Energy::ZERO,
            access_scale: 1,
            loop_boundary: None,
            callee_boundary: false,
        }
    }
}

/// One decided interval of a placed path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct IntervalPlan {
    /// Path item indices covered by the interval (empty when two
    /// anchors are adjacent).
    pub items: Vec<usize>,
    /// VM set during the interval.
    pub alloc: VarSet,
    /// Running energy consumed after each item of the interval,
    /// starting from the interval's opening (restore included). Used to
    /// maintain `Eleft`.
    pub consumed_after: Vec<(usize, Energy)>,
    /// Energy still needed from the start of each item to close the
    /// interval (save included). Used to maintain `Eto_leave`.
    pub needed_from: Vec<(usize, Energy)>,
}

/// Result of placing checkpoints on one path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PlacedPath {
    /// Link indices (into `ItemPath::links`) that become checkpoints.
    pub enabled_links: Vec<usize>,
    /// Candidate link indices that are definitively rejected.
    pub disabled_links: Vec<usize>,
    /// Interval allocations, in path order.
    pub intervals: Vec<IntervalPlan>,
    /// Total path energy (the shortest-path distance).
    pub total: Energy,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Anchor {
    Start,
    /// Potential (or forced) checkpoint at `links[idx]`.
    Link {
        idx: usize,
        forced: bool,
    },
    /// Mandatory waypoint: barrier item.
    Barrier {
        item: usize,
    },
    End,
}

impl Anchor {
    /// Total order along the path: items at even keys, links at odd.
    fn key(self, n_items: usize) -> i64 {
        match self {
            Anchor::Start => -1,
            Anchor::Barrier { item } => 2 * item as i64,
            Anchor::Link { idx, .. } => 2 * idx as i64 + 1,
            Anchor::End => 2 * n_items as i64 - 1,
        }
    }

    fn blocks_skipping(self) -> bool {
        matches!(
            self,
            Anchor::Barrier { .. } | Anchor::Link { forced: true, .. }
        )
    }
}

struct EdgeEval {
    cost: Energy,
    alloc: VarSet,
    items: Vec<usize>,
    consumed_after: Vec<(usize, Energy)>,
    needed_from: Vec<(usize, Energy)>,
}

/// Cost of one path item as a function of the interval allocation.
enum ItemCost {
    /// Allocation-independent: loops (whole-body summaries) and blocks
    /// whose allocation an earlier path already committed.
    Const(Energy),
    /// Undecided block: `inst_cost` is linear in which accessed
    /// variables sit in VM, so the cost under `alloc` is the all-NVM
    /// cost minus the per-variable savings of the VM-resident ones.
    Linear {
        all_nvm: Energy,
        /// Energy saved when the variable is VM-resident
        /// (`reads·ΔER + writes·ΔEW`; VM-eligible variables only).
        saved: Vec<(VarId, Energy)>,
    },
}

/// Per-path memoization shared by every RCG edge evaluation.
///
/// `eval_interval` runs for O(anchors²) pairs per path, but everything it
/// derives from *single* items — access counts, committed allocations,
/// mandatory VM sets, item costs — only depends on the path, so it is
/// computed once here. Because an interval's items form a contiguous
/// index range, aggregated access counts become a prefix-sum difference
/// instead of a fresh `HashMap` fold per pair.
struct PathMemo {
    /// Committed allocation per item (`ctx.fixed_alloc`).
    fixed: Vec<Option<VarSet>>,
    /// Mandatory-VM set per item (`ctx.item_mandatory_vm`).
    mandatory: Vec<VarSet>,
    /// Item cost per item (`ctx.item_cost` in closed form).
    cost: Vec<ItemCost>,
    /// Every variable accessed by some non-fixed item, ascending.
    vars: Vec<VarId>,
    /// `pfx[i+1][k] − pfx[i][k]` is item `i`'s access count of
    /// `vars[k]`; fixed and barrier items contribute zero (their
    /// accesses never feed gain selection).
    pfx: Vec<Vec<AccessCount>>,
}

impl PathMemo {
    fn new(ctx: &FuncCtx<'_>, path: &ItemPath) -> Self {
        let n = path.items.len();
        let read_gain = ctx.table.read_gain().as_pj();
        let write_gain = ctx.table.write_gain().as_pj();
        let mut fixed: Vec<Option<VarSet>> = Vec::with_capacity(n);
        let mut mandatory: Vec<VarSet> = Vec::with_capacity(n);
        let mut cost: Vec<ItemCost> = Vec::with_capacity(n);
        let mut accesses: Vec<Option<HashMap<VarId, AccessCount>>> = Vec::with_capacity(n);
        for &item in &path.items {
            // Barrier items are anchors, never interval members: their
            // per-item data is unused (and loop barriers may not even
            // have summaries to query).
            if ctx.is_barrier(item) {
                fixed.push(None);
                mandatory.push(VarSet::empty());
                cost.push(ItemCost::Const(Energy::ZERO));
                accesses.push(None);
                continue;
            }
            let f = ctx.fixed_alloc(item);
            cost.push(match (&item, &f) {
                (Item::Loop(_), _) => ItemCost::Const(ctx.item_cost(item, &VarSet::empty())),
                (Item::Block(_), Some(f)) => ItemCost::Const(ctx.item_cost(item, f)),
                (Item::Block(b), None) => {
                    // `block_cost` only classifies the block's *own*
                    // loads/stores (callees contribute their constant
                    // entry energy), so the linear form uses the raw
                    // per-block access map, not `item_access`.
                    let mut saved: Vec<(VarId, Energy)> = ctx
                        .access
                        .block(*b)
                        .iter()
                        .filter(|(v, _)| ctx.vm_eligible(**v))
                        .map(|(&v, &c)| {
                            let pj = c.reads * read_gain + c.writes * write_gain;
                            (v, Energy::from_pj(pj))
                        })
                        .collect();
                    saved.sort_unstable_by_key(|e| e.0);
                    ItemCost::Linear {
                        all_nvm: ctx.item_cost(item, &VarSet::empty()),
                        saved,
                    }
                }
            });
            accesses.push(if f.is_some() {
                None
            } else {
                Some(ctx.item_access(item))
            });
            fixed.push(f);
            mandatory.push(ctx.item_mandatory_vm(item));
        }
        let mut vars: Vec<VarId> = accesses
            .iter()
            .flatten()
            .flat_map(|m| m.keys().copied())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        let mut pfx = Vec::with_capacity(n + 1);
        pfx.push(vec![AccessCount::default(); vars.len()]);
        for m in &accesses {
            let mut row = pfx.last().expect("seeded").clone();
            if let Some(m) = m {
                for (k, v) in vars.iter().enumerate() {
                    if let Some(&c) = m.get(v) {
                        row[k] += c;
                    }
                }
            }
            pfx.push(row);
        }
        PathMemo {
            fixed,
            mandatory,
            cost,
            vars,
            pfx,
        }
    }

    /// Cost of item `i` when the interval allocation is `alloc`
    /// (identical to `ctx.item_cost` with the item's committed set
    /// taking precedence).
    fn item_cost(&self, i: usize, alloc: &VarSet) -> Energy {
        match &self.cost[i] {
            ItemCost::Const(c) => *c,
            ItemCost::Linear { all_nvm, saved } => {
                let pj: u64 = saved
                    .iter()
                    .filter(|(v, _)| alloc.contains(*v))
                    .map(|(_, d)| d.as_pj())
                    .sum();
                Energy::from_pj(all_nvm.as_pj() - pj)
            }
        }
    }

    /// Aggregated access counts of items `first..end`, ascending by
    /// variable, written into `out`.
    fn range_counts(&self, first: usize, end: usize, out: &mut Vec<(VarId, AccessCount)>) {
        out.clear();
        let (a, b) = (&self.pfx[first], &self.pfx[end]);
        for (k, &v) in self.vars.iter().enumerate() {
            let c = AccessCount {
                reads: b[k].reads - a[k].reads,
                writes: b[k].writes - a[k].writes,
            };
            if c.reads != 0 || c.writes != 0 {
                out.push((v, c));
            }
        }
    }
}

/// Reusable buffers for `eval_interval`, allocated once per path.
#[derive(Default)]
struct EvalScratch {
    counts: Vec<(VarId, AccessCount)>,
    scaled: Vec<(VarId, AccessCount)>,
}

/// Returns `base` scaled by `scale`, reusing `buf` when a copy is needed.
fn scaled<'a>(
    base: &'a [(VarId, AccessCount)],
    scale: u64,
    buf: &'a mut Vec<(VarId, AccessCount)>,
) -> &'a [(VarId, AccessCount)] {
    if scale == 1 {
        return base;
    }
    buf.clear();
    buf.extend(base.iter().map(|&(v, c)| {
        (
            v,
            AccessCount {
                reads: c.reads.saturating_mul(scale),
                writes: c.writes.saturating_mul(scale),
            },
        )
    }));
    buf
}

/// Places checkpoints and allocations on `path`. Returns `None` when no
/// feasible placement exists under the inherited decisions.
pub(crate) fn place_on_path(
    ctx: &FuncCtx<'_>,
    path: &ItemPath,
    env: PathEnv,
) -> Option<PlacedPath> {
    let _span = schematic_obs::span("analyze/rcg");
    let n = path.items.len();
    debug_assert_eq!(path.links.len() + 1, n.max(1));

    // ---- build the anchor list ------------------------------------------
    let mut anchors = vec![Anchor::Start];
    for (i, &item) in path.items.iter().enumerate() {
        if ctx.is_barrier(item) {
            anchors.push(Anchor::Barrier { item: i });
        }
        if i < path.links.len() {
            match ctx.edge_decision(path.links[i]) {
                crate::error::EdgeDecision::Disabled => {}
                crate::error::EdgeDecision::Enabled => {
                    anchors.push(Anchor::Link {
                        idx: i,
                        forced: true,
                    });
                }
                crate::error::EdgeDecision::Undecided => {
                    anchors.push(Anchor::Link {
                        idx: i,
                        forced: false,
                    });
                }
            }
        }
    }
    anchors.push(Anchor::End);

    let memo = PathMemo::new(ctx, path);
    let mut scratch = EvalScratch::default();

    // ---- Dijkstra over anchors -------------------------------------------
    let m = anchors.len();
    let mut dist: Vec<Option<Energy>> = vec![None; m];
    let mut parent: Vec<Option<(usize, EdgeEval)>> = Vec::with_capacity(m);
    for _ in 0..m {
        parent.push(None);
    }
    dist[0] = Some(Energy::ZERO);
    let mut done = vec![false; m];
    loop {
        // Extract-min.
        let mut u = None;
        for i in 0..m {
            if !done[i] {
                if let Some(d) = dist[i] {
                    if u.map(|(_, best)| d < best).unwrap_or(true) {
                        u = Some((i, d));
                    }
                }
            }
        }
        let Some((u, du)) = u else { break };
        done[u] = true;
        if anchors[u] == Anchor::End {
            break;
        }
        for v in (u + 1)..m {
            // A mandatory waypoint strictly between forbids the edge.
            if anchors[u + 1..v].iter().any(|a| a.blocks_skipping()) {
                continue;
            }
            if let Some(eval) =
                eval_interval(ctx, path, env, &memo, &mut scratch, anchors[u], anchors[v])
            {
                let nd = du + eval.cost;
                if dist[v].map(|d| nd < d).unwrap_or(true) {
                    dist[v] = Some(nd);
                    parent[v] = Some((u, eval));
                }
            }
        }
    }

    let end = m - 1;
    dist[end]?;

    // ---- reconstruct ---------------------------------------------------------
    let mut enabled = Vec::new();
    let mut intervals = Vec::new();
    let mut on_path = vec![false; m];
    let mut cur = end;
    on_path[end] = true;
    while cur != 0 {
        let (prev, eval) = parent[cur].take().expect("reached node has parent");
        intervals.push(IntervalPlan {
            items: eval.items,
            alloc: eval.alloc,
            consumed_after: eval.consumed_after,
            needed_from: eval.needed_from,
        });
        if let Anchor::Link { idx, forced: false } = anchors[cur] {
            enabled.push(idx);
        }
        on_path[prev] = true;
        cur = prev;
    }
    intervals.reverse();
    enabled.reverse();

    // Every candidate that did not become a checkpoint is final-disabled.
    let disabled = anchors
        .iter()
        .filter_map(|a| match a {
            Anchor::Link { idx, forced: false } if !enabled.contains(idx) => Some(*idx),
            _ => None,
        })
        .collect();

    Some(PlacedPath {
        enabled_links: enabled,
        disabled_links: disabled,
        intervals,
        total: dist[end].expect("checked"),
    })
}

/// Recomputes restore/exec costs for a candidate allocation.
#[allow(clippy::too_many_arguments)]
fn recost(
    ctx: &FuncCtx<'_>,
    env: PathEnv,
    memo: &PathMemo,
    a: Anchor,
    _b: Anchor,
    items: &[usize],
    alloc: &VarSet,
    resume_into: Option<schematic_ir::BlockId>,
) -> (Energy, Energy, Vec<(usize, Energy)>) {
    let restore = match (a, resume_into) {
        (Anchor::Start, Some(target)) if env.loop_boundary.is_some() || env.callee_boundary => {
            let words = ctx.set_words(&ctx.restore_set(alloc, target));
            ctx.table.checkpoint_resume_cost(words).energy
        }
        (Anchor::Start, Some(target)) => {
            let words = ctx.set_words(&ctx.restore_set(alloc, target));
            ctx.table.restore_words_cost(words).energy
        }
        (Anchor::Link { .. }, Some(target)) => {
            let words = ctx.set_words(&ctx.restore_set(alloc, target));
            ctx.table.checkpoint_resume_cost(words).energy
        }
        (Anchor::Link { .. }, None) => ctx.table.checkpoint_resume_cost(0).energy,
        _ => Energy::ZERO,
    };
    let mut exec = Energy::ZERO;
    let mut per_item = Vec::with_capacity(items.len());
    for &i in items {
        let cost = memo.item_cost(i, alloc);
        exec += cost;
        per_item.push((i, cost));
    }
    (restore, exec, per_item)
}

/// Evaluates the RCG edge between two anchors: feasibility, allocation
/// and cost.
fn eval_interval(
    ctx: &FuncCtx<'_>,
    path: &ItemPath,
    env: PathEnv,
    memo: &PathMemo,
    scratch: &mut EvalScratch,
    a: Anchor,
    b: Anchor,
) -> Option<EdgeEval> {
    let n = path.items.len();
    let (lo, hi) = (a.key(n), b.key(n));
    debug_assert!(lo < hi);
    // Item keys are even, so `lo < 2i < hi` is the contiguous range below.
    let first = ((lo + 2) >> 1) as usize;
    let end = ((hi + 1) >> 1) as usize;
    debug_assert!(first <= end && end <= n);
    let items: Vec<usize> = (first..end).collect();
    debug_assert!(items
        .iter()
        .all(|&i| lo < 2 * i as i64 && 2 * (i as i64) < hi));

    // ---- allocation -----------------------------------------------------
    let mut fixed: Option<&VarSet> = None;
    let mut mandatory = VarSet::empty();
    for &i in &items {
        if let Some(f) = memo.fixed[i].as_ref() {
            match fixed {
                None => fixed = Some(f),
                Some(prev) if prev == f => {}
                Some(_) => return None, // conflicting committed allocations
            }
        }
        mandatory.union_with(&memo.mandatory[i]);
    }
    let EvalScratch {
        counts: counts_buf,
        scaled: scaled_buf,
    } = scratch;
    memo.range_counts(first, end, counts_buf);

    // Capacity shrinks by whatever an adjacent barrier needs resident.
    let mut capacity = ctx.config.svm_bytes;
    for anchor in [a, b] {
        if let Anchor::Barrier { item } = anchor {
            capacity = capacity.saturating_sub(ctx.item_reserved_bytes(path.items[item]));
        }
    }

    let first_block = items.iter().find_map(|&i| match path.items[i] {
        Item::Block(b) => Some(b),
        Item::Loop(_) => None,
    });
    let resume_into = match a {
        Anchor::Start => match env.loop_boundary {
            Some((header, _)) => Some(header),
            None if env.boot || env.callee_boundary => first_block,
            None => None,
        },
        Anchor::Barrier { .. } => None,
        _ => first_block,
    };
    let save_edge = match b {
        Anchor::Link { idx, .. } => Some(path.links[idx]),
        Anchor::End => env.loop_boundary.map(|(_, backedge)| backedge),
        _ => None,
    };
    let bounds = IntervalBounds {
        resume_into,
        save_edge,
    };

    // With no committed constraint, start from the gain-optimal set and
    // shrink the capacity until the interval fits the budget (a large
    // allocation may be profitable per access yet unaffordable to
    // save/restore at the interval's boundaries).
    let mut capacity_try = capacity;
    let mut alloc =
        match fixed {
            Some(f) => {
                let mut set = f.clone();
                set.union_with(&mandatory);
                if ctx.set_bytes(&set) > capacity {
                    return None;
                }
                set
            }
            None => {
                let mut scale = env.access_scale;
                let mut vm = select_allocation(
                    ctx,
                    scaled(counts_buf, scale, scaled_buf),
                    &mandatory,
                    bounds,
                    capacity_try,
                )
                .vm;
                if env.loop_boundary.is_some() {
                    // The boundary save/restore is paid once per conditional-
                    // checkpoint period, while accesses accrue every
                    // iteration. Iterate so the access scale used by the gain
                    // matches the period the chosen allocation can afford
                    // (Algorithm 1's `numit`).
                    for _ in 0..4 {
                        let save_words = ctx.set_words(&vm.intersection(&ctx.written));
                        let restore_words = ctx.set_words(&vm);
                        let overhead = ctx.table.checkpoint_commit_cost(save_words).energy
                            + ctx.table.checkpoint_resume_cost(restore_words).energy;
                        let exec: Energy = items.iter().map(|&i| memo.item_cost(i, &vm)).sum();
                        let budget = ctx.config.eb.saturating_sub(overhead);
                        let period = budget.div_floor(exec).unwrap_or(u64::MAX).max(1);
                        // Clean VM copies persist across checkpoint regions
                        // (and across calls), so the amortization horizon is
                        // the conditional-checkpoint period, not this loop's
                        // trip count.
                        let new_scale = period.min(1 << 20);
                        if std::env::var_os("SCHEMATIC_DEBUG_GAIN").is_some() {
                            eprintln!(
                            "[gain] fn{} items={:?} scale {} -> {} alloc={:?} overhead={} exec={}",
                            ctx.fid.index(), items, scale, new_scale, vm, overhead, exec
                        );
                        }
                        if new_scale == scale {
                            break;
                        }
                        scale = new_scale;
                        vm = select_allocation(
                            ctx,
                            scaled(counts_buf, scale, scaled_buf),
                            &mandatory,
                            bounds,
                            capacity_try,
                        )
                        .vm;
                    }
                }
                vm
            }
        };

    // ---- costs ------------------------------------------------------------
    let eb = ctx.config.eb;
    let initial = match a {
        Anchor::Barrier { item } => ctx.barrier_bounds(path.items[item]).exit,
        _ => Energy::ZERO,
    };
    let mut restore = match (a, resume_into) {
        (Anchor::Start, Some(target)) if env.loop_boundary.is_some() || env.callee_boundary => {
            // The back-edge checkpoint's resume path.
            let words = ctx.set_words(&ctx.restore_set(&alloc, target));
            ctx.table.checkpoint_resume_cost(words).energy
        }
        (Anchor::Start, Some(target)) => {
            // Boot-time staging of the first interval's VM set.
            let words = ctx.set_words(&ctx.restore_set(&alloc, target));
            ctx.table.restore_words_cost(words).energy
        }
        (Anchor::Link { .. }, Some(target)) => {
            let words = ctx.set_words(&ctx.restore_set(&alloc, target));
            ctx.table.checkpoint_resume_cost(words).energy
        }
        (Anchor::Link { .. }, None) => ctx.table.checkpoint_resume_cost(0).energy,
        _ => Energy::ZERO,
    };

    // Execution, tracking running consumption for Eleft/Eto_leave.
    let (_, mut exec, mut per_item) = recost(ctx, env, memo, a, b, &items, &alloc, None);

    let (mut closing_feas, mut closing_cost) = match b {
        Anchor::Link { idx, .. } => {
            let words = ctx.set_words(&ctx.save_set(&alloc, path.links[idx]));
            let c = ctx.table.checkpoint_commit_cost(words).energy;
            (c, c)
        }
        Anchor::Barrier { item } => {
            let bb = ctx.barrier_bounds(path.items[item]);
            (bb.entry, bb.entry + bb.internal)
        }
        Anchor::End => match env.loop_boundary {
            Some((_, backedge)) => {
                // The back-edge checkpoint's commit path.
                let words = ctx.set_words(&ctx.save_set(&alloc, backedge));
                let c = ctx.table.checkpoint_commit_cost(words).energy;
                (c + env.end_demand, Energy::ZERO)
            }
            None if env.callee_boundary => {
                let words = ctx.set_words(&alloc.intersection(&ctx.written));
                let c = ctx.table.checkpoint_commit_cost(words).energy;
                (c + env.end_demand, Energy::ZERO)
            }
            None => (env.end_demand, Energy::ZERO),
        },
        Anchor::Start => unreachable!("edges never enter Start"),
    };

    let mut needed_total = initial + restore + exec + closing_feas;
    while needed_total > eb {
        if fixed.is_some() || alloc == mandatory || capacity_try == 0 {
            return None;
        }
        // Shrink and retry: halve the capacity offered to the gain
        // selection (mandatory variables always stay).
        capacity_try = ctx
            .set_bytes(&alloc)
            .saturating_sub(1)
            .min(capacity_try / 2);
        alloc = select_allocation(
            ctx,
            scaled(counts_buf, env.access_scale, scaled_buf),
            &mandatory,
            bounds,
            capacity_try,
        )
        .vm;
        let (r2, e2, c2) = recost(ctx, env, memo, a, b, &items, &alloc, resume_into);
        restore = r2;
        exec = e2;
        per_item = c2;
        let closing2 = match b {
            Anchor::Link { idx, .. } => {
                let words = ctx.set_words(&ctx.save_set(&alloc, path.links[idx]));
                ctx.table.checkpoint_commit_cost(words).energy
            }
            Anchor::End => match env.loop_boundary {
                Some((_, backedge)) => {
                    let words = ctx.set_words(&ctx.save_set(&alloc, backedge));
                    ctx.table.checkpoint_commit_cost(words).energy + env.end_demand
                }
                None if env.callee_boundary => {
                    let words = ctx.set_words(&alloc.intersection(&ctx.written));
                    ctx.table.checkpoint_commit_cost(words).energy + env.end_demand
                }
                None => closing_feas,
            },
            _ => closing_feas,
        };
        needed_total = initial + restore + exec + closing2;
        if needed_total <= eb {
            closing_feas = closing2;
            closing_cost = match b {
                Anchor::Link { .. } => closing2,
                _ => closing_cost,
            };
            break;
        }
    }

    // Interior committed-block constraints (§III-A.3): when the interval
    // crosses a block some earlier path already scheduled, respect that
    // block's Eleft / Eto_leave so *combinations* of paths stay sound.
    let mut running = initial + restore;
    let mut consumed_after = Vec::with_capacity(per_item.len());
    for &(i, cost) in &per_item {
        if let Item::Block(x) = path.items[i] {
            if let Some(need) = ctx.e_to_leave[x.index()] {
                if running + need > eb {
                    return None;
                }
            }
        }
        running += cost;
        if let Item::Block(x) = path.items[i] {
            if let Some(left) = ctx.e_left[x.index()] {
                // Energy still to spend after x in this new interval must
                // fit what committed paths leave behind at x.
                let after: Energy = per_item
                    .iter()
                    .skip_while(|&&(j, _)| j <= i)
                    .map(|&(_, c)| c)
                    .sum::<Energy>()
                    + closing_feas;
                if after > left {
                    return None;
                }
            }
        }
        consumed_after.push((i, running));
    }
    // Energy needed from each item's start to close the interval.
    let mut needed_from = Vec::with_capacity(per_item.len());
    let mut tail = closing_feas;
    for &(i, cost) in per_item.iter().rev() {
        tail += cost;
        needed_from.push((i, tail));
    }
    needed_from.reverse();

    // For loop-body regions the Start/End boundary models the back-edge
    // checkpoint, which fires once every `numit` iterations — amortize
    // its cost accordingly when ranking placements (feasibility above
    // used the full per-firing cost).
    let mut ranked_restore = restore;
    let mut ranked_closing = closing_cost;
    if env.loop_boundary.is_some() {
        let save_words = ctx.set_words(&alloc.intersection(&ctx.written));
        let restore_words = ctx.set_words(&alloc);
        let overhead = ctx.table.checkpoint_commit_cost(save_words).energy
            + ctx.table.checkpoint_resume_cost(restore_words).energy;
        let budget = ctx.config.eb.saturating_sub(overhead);
        let period = budget
            .div_floor(exec.max(Energy::from_pj(1)))
            .unwrap_or(1)
            .max(1);
        if a == Anchor::Start {
            ranked_restore = Energy::from_pj(restore.as_pj() / period);
        }
        if b == Anchor::End {
            ranked_closing = Energy::from_pj(closing_cost.as_pj() / period);
        }
    }
    if std::env::var_os("SCHEMATIC_DEBUG_EDGE").is_some() && items.len() > 10 {
        eprintln!(
            "[edge] fn{} {:?}->{:?} n={} alloc={:?} restore={restore} exec={exec} ranked={}",
            ctx.fid.index(),
            a,
            b,
            items.len(),
            alloc,
            ranked_restore + exec + ranked_closing
        );
    }
    Some(EdgeEval {
        cost: ranked_restore + exec + ranked_closing,
        alloc,
        items,
        consumed_after,
        needed_from,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchematicConfig;
    use crate::summary::FuncSummary;
    use schematic_energy::CostTable;
    use schematic_ir::{call_effects, Edge, FunctionBuilder, Module, ModuleBuilder, Variable};

    /// Three straight-line blocks A -> B -> C, each with heavy accesses
    /// to `sum`.
    fn chain_module(loads_per_block: usize) -> Module {
        let mut mb = ModuleBuilder::new("m");
        let sum = mb.var(Variable::scalar("sum"));
        let mut f = FunctionBuilder::new("main", 0);
        let b1 = f.new_block("b1");
        let b2 = f.new_block("b2");
        for block in [None, Some(b1), Some(b2)] {
            if let Some(b) = block {
                f.switch_to(b);
            }
            for _ in 0..loads_per_block {
                let v = f.load_scalar(sum);
                f.store_scalar(sum, v);
            }
            match block {
                None => f.br(b1),
                Some(b) if b == b1 => f.br(b2),
                _ => f.ret(None),
            }
        }
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    fn chain_path() -> ItemPath {
        use schematic_ir::BlockId;
        ItemPath {
            items: vec![
                Item::Block(BlockId(0)),
                Item::Block(BlockId(1)),
                Item::Block(BlockId(2)),
            ],
            links: vec![
                Edge::new(BlockId(0), BlockId(1)),
                Edge::new(BlockId(1), BlockId(2)),
            ],
        }
    }

    fn ctx_for<'a>(
        m: &'a Module,
        table: &'a CostTable,
        config: &'a SchematicConfig,
        summaries: &'a [FuncSummary],
        effects: &[schematic_ir::CallEffect],
    ) -> FuncCtx<'a> {
        FuncCtx::new(m, table, config, summaries, effects, m.entry_func())
    }

    #[test]
    fn large_budget_places_no_checkpoints() {
        let m = chain_module(5);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(Energy::from_uj(1000));
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); 1];
        let ctx = ctx_for(&m, &table, &config, &summaries, &effects);
        let placed = place_on_path(&ctx, &chain_path(), PathEnv::default()).unwrap();
        assert!(placed.enabled_links.is_empty());
        assert_eq!(placed.disabled_links.len(), 2);
        assert_eq!(placed.intervals.len(), 1);
        // The single interval allocates the hot scalar to VM.
        let sum = m.var_by_name("sum").unwrap();
        assert!(placed.intervals[0].alloc.contains(sum));
    }

    #[test]
    fn small_budget_forces_checkpoints() {
        let m = chain_module(120);
        let table = CostTable::msp430fr5969();
        // One block ≈ 242 kpJ in VM; the whole chain ≈ 727 kpJ exceeds
        // the 600 kpJ budget, but one block plus checkpoint overheads
        // (resume ≈ 80 kpJ, commit ≈ 165 kpJ) fits.
        let config = SchematicConfig::new(Energy::from_pj(600_000));
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); 1];
        let ctx = ctx_for(&m, &table, &config, &summaries, &effects);
        let placed = place_on_path(&ctx, &chain_path(), PathEnv::default()).unwrap();
        assert!(
            !placed.enabled_links.is_empty(),
            "expected at least one checkpoint, got {placed:?}"
        );
        assert_eq!(placed.enabled_links.len() + 1, placed.intervals.len());
    }

    #[test]
    fn impossible_budget_is_infeasible() {
        let m = chain_module(120);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(Energy::from_pj(10)); // absurd
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); 1];
        let ctx = ctx_for(&m, &table, &config, &summaries, &effects);
        assert!(place_on_path(&ctx, &chain_path(), PathEnv::default()).is_none());
    }

    #[test]
    fn forced_checkpoint_is_respected() {
        let m = chain_module(5);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(Energy::from_uj(1000));
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); 1];
        let mut ctx = ctx_for(&m, &table, &config, &summaries, &effects);
        let path = chain_path();
        ctx.edges
            .insert(path.links[0], crate::error::EdgeDecision::Enabled);
        let placed = place_on_path(&ctx, &path, PathEnv::default()).unwrap();
        // The forced link is a waypoint: two intervals even though the
        // budget is huge; it is not re-reported as newly enabled.
        assert_eq!(placed.intervals.len(), 2);
        assert!(placed.enabled_links.is_empty());
    }

    #[test]
    fn disabled_edge_is_not_a_candidate() {
        let m = chain_module(120);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(Energy::from_pj(600_000));
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); 1];
        let mut ctx = ctx_for(&m, &table, &config, &summaries, &effects);
        let path = chain_path();
        // Disable both candidate edges: placement becomes infeasible.
        ctx.edges
            .insert(path.links[0], crate::error::EdgeDecision::Disabled);
        ctx.edges
            .insert(path.links[1], crate::error::EdgeDecision::Disabled);
        assert!(place_on_path(&ctx, &path, PathEnv::default()).is_none());
    }

    #[test]
    fn end_demand_tightens_feasibility() {
        let m = chain_module(120);
        let table = CostTable::msp430fr5969();
        // Budget that barely fits everything in one interval...
        let one_shot = {
            let config = SchematicConfig::new(Energy::from_uj(1000));
            let effects = call_effects(&m);
            let summaries = vec![FuncSummary::default(); 1];
            let ctx = ctx_for(&m, &table, &config, &summaries, &effects);
            place_on_path(&ctx, &chain_path(), PathEnv::default())
                .unwrap()
                .total
        };
        let config = SchematicConfig::new(one_shot + Energy::from_pj(1_000));
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); 1];
        let ctx = ctx_for(&m, &table, &config, &summaries, &effects);
        // Without demand: no checkpoint needed.
        let free = place_on_path(&ctx, &chain_path(), PathEnv::default()).unwrap();
        assert!(free.enabled_links.is_empty());
        // With a large end demand the single interval no longer fits.
        let env = PathEnv {
            end_demand: Energy::from_pj(300_000),
            ..PathEnv::default()
        };
        let tight = place_on_path(&ctx, &chain_path(), env).unwrap();
        assert!(!tight.enabled_links.is_empty());
    }

    #[test]
    fn committed_allocation_is_reused() {
        let m = chain_module(5);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(Energy::from_uj(1000));
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); 1];
        let mut ctx = ctx_for(&m, &table, &config, &summaries, &effects);
        // Pretend an earlier path committed b1 to all-NVM.
        ctx.alloc[1] = Some(VarSet::empty());
        let placed = place_on_path(&ctx, &chain_path(), PathEnv::default()).unwrap();
        // The single interval must adopt the committed (empty) set.
        assert!(placed.intervals[0].alloc.is_empty());
    }
}
