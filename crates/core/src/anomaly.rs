//! Static WAR-hazard / idempotence analysis over inter-checkpoint regions.
//!
//! SCHEMATIC's soundness argument (§II-B) has two halves. Forward progress
//! — every inter-checkpoint stretch fits in `EB` — is re-checked by
//! [`crate::pverify`]. This module checks the other half: **no memory
//! anomalies**. Re-executing a region after a power failure must not
//! observe NVM state clobbered by the first attempt; following Surbatovich
//! et al., the dangerous pattern is a *WAR hazard* — an NVM-level read of a
//! variable followed, in the same inter-checkpoint region, by an NVM-level
//! write to it. After a failure the region restarts and the read sees the
//! written (post-first-attempt) value instead of the at-checkpoint value.
//!
//! The analysis works directly on an [`InstrumentedModule`]: the
//! allocation plan decides which accesses touch NVM (mirroring the
//! emulator's `resolve_class`: pinned → NVM, in-plan → VM, otherwise NVM),
//! and checkpoint intrinsics delimit regions. Every NVM-level event the
//! emulator can generate is over-approximated:
//!
//! | instruction              | NVM events modeled                         |
//! |--------------------------|--------------------------------------------|
//! | `load` (NVM class)       | read                                       |
//! | `load` (VM class)        | read — the VM copy may be invalid and      |
//! |                          | fault-load from NVM                        |
//! | `store` (NVM class)      | write                                      |
//! | `store` (VM scalar)      | write*, only if the dirty copy can later   |
//! |                          | be flushed by residency reconciliation     |
//! | `store` (VM array)       | read (whole-array fault load) then write*  |
//! | `savevar`                | write (explicit flush)                     |
//! | `restorevar`             | read (reload if invalid)                   |
//! | `call f`                 | callee summary: reads/writes of `f` and    |
//! |                          | everything it calls                        |
//! | `checkpoint` (plain)     | region boundary; `restore_vars` become the |
//! |                          | next region's entry reads                  |
//! | `checkpoint` (guarded) / | boundary on the fire path *and*            |
//! | `condcheckpoint`         | transparent on the skip path               |
//!
//! \* A VM store's eventual NVM write (the reconcile-time flush) is
//! attributed to the store site: while a variable is dirty its VM copy
//! stays valid, so no NVM-level read of it can occur between the store and
//! its flush — every read-before-flush is also a read-before-store.
//! Checkpoint *commits* flush `save_vars` atomically with the resume image
//! and are never re-executed, so they are not write events.
//!
//! Each region is classified on a four-point lattice
//! ([`RegionClass`]): `Idempotent` ⊑ `WarFree` ⊑ `Shielded` ⊑ `Hazardous`.
//! `Shielded` captures the SCHEMATIC/ROCKCLIMB case: WARs exist on paper,
//! but under [`FailurePolicy::WaitRecharge`] with a verified placement the
//! runtime sleeps at every checkpoint until the capacitor is full, so
//! regions never re-execute and the hazards are latent. They are still
//! reported (the dynamic shadow recorder in `schematic-emu` checks its
//! observations against them) but do not make the program unsound.
//!
//! Entry point: [`check_anomalies`]; [`crate::analyze::check_all`] folds
//! this together with the forward-progress verifier.

use crate::error::PlacementError;
use schematic_emu::{CheckpointKind, FailurePolicy, InstrumentedModule};
use schematic_ir::{BlockId, CallGraph, CheckpointId, FuncId, Inst, Module, VarId, VarSet};
use std::collections::BTreeMap;
use std::fmt;

/// A program point: instruction `inst` of block `block` in `func`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Site {
    /// Function containing the event.
    pub func: FuncId,
    /// Block containing the event.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: usize,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:i{}", self.func, self.block, self.inst)
    }
}

/// Where an inter-checkpoint region begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegionStart {
    /// First boot of the entry function (no checkpoint committed yet).
    Boot,
    /// The region fragment live at a non-entry function's entry — the
    /// continuation of whichever caller region was active at the call.
    FuncEntry(FuncId),
    /// The region opened when the checkpoint at `site` commits.
    Checkpoint {
        /// Checkpoint table index.
        id: CheckpointId,
        /// The checkpoint instruction's location.
        site: Site,
    },
}

impl fmt::Display for RegionStart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionStart::Boot => write!(f, "boot"),
            RegionStart::FuncEntry(func) => write!(f, "entry of {func}"),
            RegionStart::Checkpoint { id, site } => write!(f, "{id}@{site}"),
        }
    }
}

/// One statically detected WAR hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anomaly {
    /// The inter-checkpoint region the hazard lives in.
    pub region: RegionStart,
    /// The NVM-resident variable read then written.
    pub var: VarId,
    /// The (earliest known) NVM-level read of `var` in the region. For
    /// reads seeded by a checkpoint's restore set this is the checkpoint
    /// site itself; for reads contributed by a callee it is the call site.
    pub read_site: Site,
    /// The NVM-level write that clobbers `var` while the read is still in
    /// the region. For writes inside a callee this is the call site.
    pub write_site: Site,
}

/// Classification of one inter-checkpoint region, ordered from harmless to
/// unsound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RegionClass {
    /// No NVM-level write can happen in the region: re-execution is
    /// trivially safe.
    Idempotent,
    /// NVM writes happen, but never to a variable read earlier in the
    /// region.
    WarFree,
    /// WAR hazards exist, but the failure policy is wait-for-recharge with
    /// a verified placement, so the region never re-executes and the
    /// hazards stay latent.
    Shielded,
    /// WAR hazards exist and the region can re-execute (rollback policy,
    /// or an unverified placement): a power failure can corrupt results.
    Hazardous,
}

impl fmt::Display for RegionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegionClass::Idempotent => "idempotent",
            RegionClass::WarFree => "war-free",
            RegionClass::Shielded => "shielded",
            RegionClass::Hazardous => "hazardous",
        };
        f.write_str(s)
    }
}

/// Summary of one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInfo {
    /// Where the region begins.
    pub start: RegionStart,
    /// Soundness class.
    pub class: RegionClass,
    /// Number of distinct variables with a WAR hazard in this region.
    pub wars: usize,
    /// Whether any NVM-level write can occur in the region.
    pub has_write: bool,
}

/// The result of [`check_anomalies`]: every region's classification plus
/// the flat hazard list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyReport {
    /// One entry per static region (fragments at function entries count
    /// separately; a dynamic region spanning calls may appear as several
    /// fragments).
    pub regions: Vec<RegionInfo>,
    /// All detected hazards, deduplicated per `(region, var)`.
    pub anomalies: Vec<Anomaly>,
}

impl AnomalyReport {
    /// Number of regions in each class, indexed by [`RegionClass`] order.
    pub fn class_counts(&self) -> [usize; 4] {
        let mut counts = [0; 4];
        for r in &self.regions {
            counts[r.class as usize] += 1;
        }
        counts
    }

    /// Number of `Hazardous` regions — the unsoundness count.
    pub fn hazardous(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| r.class == RegionClass::Hazardous)
            .count()
    }

    /// `true` when no region is worse than `WarFree` — no WAR exists even
    /// on paper.
    pub fn war_free(&self) -> bool {
        self.regions.iter().all(|r| r.class <= RegionClass::WarFree)
    }

    /// `true` when no region is `Hazardous` (latent, shielded WARs are
    /// allowed).
    pub fn is_sound(&self) -> bool {
        self.hazardous() == 0
    }

    /// The set of variables involved in any predicted WAR, across all
    /// regions. The emulator's shadow recorder asserts that every WAR it
    /// observes at runtime is on one of these variables.
    pub fn predicted_war_vars(&self, n_vars: usize) -> VarSet {
        let mut set = VarSet::new(n_vars);
        for a in &self.anomalies {
            set.insert(a.var);
        }
        set
    }

    /// One-line human-readable summary.
    pub fn verdict(&self) -> String {
        let [idem, free, shielded, hazardous] = self.class_counts();
        format!(
            "{} region(s): {idem} idempotent, {free} war-free, {shielded} shielded, \
             {hazardous} hazardous",
            self.regions.len()
        )
    }
}

/// The NVM-level events one instruction can generate.
#[derive(Debug, Clone, Copy)]
enum Event {
    None,
    Read(VarId),
    Write(VarId),
    /// Whole-array fault load then deferred flush (VM array store).
    ReadWrite(VarId),
    Call(FuncId),
    /// Always commits: ends every live region, opens a new one.
    Boundary(CheckpointId),
    /// May commit (guarded / periodic): opens a new region on the fire
    /// path while live regions flow through on the skip path.
    MaybeBoundary(CheckpointId),
}

/// Per-function transitive NVM effect summary (through all callees,
/// ignoring internal checkpoints — a conservative superset for call sites).
#[derive(Debug, Clone, Default)]
struct FuncEffects {
    reads: VarSet,
    writes: VarSet,
}

/// Everything the per-function dataflow needs from the module.
struct AnalysisCtx<'a> {
    im: &'a InstrumentedModule,
    module: &'a Module,
    /// Vars whose dirty VM copy can ever be flushed back to NVM by
    /// residency reconciliation: non-pinned and absent from at least one
    /// block's plan.
    flushable: VarSet,
    /// Vars stored while VM-resident anywhere in the module (candidates
    /// for carrying dirty data across a rollback-policy commit).
    vm_stored: VarSet,
    effects: Vec<FuncEffects>,
}

impl<'a> AnalysisCtx<'a> {
    fn event(&self, f: FuncId, b: BlockId, inst: &Inst) -> Event {
        let in_vm = |v: VarId| {
            !self.module.var(v).pinned_nvm
                && self
                    .im
                    .plan
                    .get_ref(f, b)
                    .is_some_and(|plan| plan.contains(v))
        };
        match inst {
            Inst::Load { var, .. } => Event::Read(*var),
            Inst::Store { var, idx, .. } => {
                if !in_vm(*var) {
                    Event::Write(*var)
                } else if !self.flushable.contains(*var) {
                    // The dirty copy can never reach NVM (all-VM plans):
                    // an array store may still fault-load the array.
                    if idx.is_some() {
                        Event::Read(*var)
                    } else {
                        Event::None
                    }
                } else if idx.is_some() {
                    Event::ReadWrite(*var)
                } else {
                    Event::Write(*var)
                }
            }
            Inst::SaveVar { var } => Event::Write(*var),
            Inst::RestoreVar { var } => Event::Read(*var),
            Inst::Call { func, .. } => Event::Call(*func),
            Inst::Checkpoint { id } => match self.im.spec(*id).map(|s| s.kind) {
                Some(CheckpointKind::Guarded { .. }) => Event::MaybeBoundary(*id),
                _ => Event::Boundary(*id),
            },
            Inst::CondCheckpoint { id, .. } => Event::MaybeBoundary(*id),
            _ => Event::None,
        }
    }

    /// Variables whose dirty data can survive the commit of checkpoint
    /// `id` and flush to NVM later, inside the next region: flushable,
    /// VM-stored somewhere, and not persisted by the commit itself. Only
    /// rollback-policy commits preserve VM contents.
    fn carryover(&self, id: CheckpointId) -> bool {
        if self.im.policy != FailurePolicy::Rollback {
            return false;
        }
        let Some(spec) = self.im.spec(id) else {
            return false;
        };
        self.flushable
            .iter()
            .any(|v| self.vm_stored.contains(v) && !spec.save_vars.contains(&v))
    }
}

/// Dataflow fact for one live region at one program point: the variables
/// NVM-read since the region started, with the earliest known read site.
type RegionReads = BTreeMap<VarId, Site>;

/// Per-block dataflow state: one optional fact per region slot of the
/// enclosing function (slot 0 = the entry-context region, then one slot
/// per checkpoint site). `None` = the region is not live here.
type BlockState = Vec<Option<RegionReads>>;

fn merge_into(dst: &mut BlockState, src: &BlockState) -> bool {
    let mut changed = false;
    for (d, s) in dst.iter_mut().zip(src) {
        match (d.as_mut(), s) {
            (_, None) => {}
            (None, Some(m)) => {
                *d = Some(m.clone());
                changed = true;
            }
            (Some(dm), Some(sm)) => {
                for (&v, &site) in sm {
                    match dm.get_mut(&v) {
                        None => {
                            dm.insert(v, site);
                            changed = true;
                        }
                        Some(existing) if site < *existing => {
                            *existing = site;
                            changed = true;
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }
    changed
}

/// Checks an instrumented program for WAR-hazard memory anomalies.
///
/// `placement_sound` is the forward-progress verdict from
/// [`crate::pverify::verify_placement`]; it decides whether latent WARs
/// under a wait-for-recharge policy are `Shielded` or `Hazardous`.
///
/// # Errors
///
/// Fails only on recursive call graphs ([`PlacementError::Recursive`]),
/// which no technique in this repository produces.
pub fn check_anomalies(
    im: &InstrumentedModule,
    placement_sound: bool,
) -> Result<AnomalyReport, PlacementError> {
    let module = &im.module;
    let n_vars = module.vars.len();

    // Flushable set: residency reconciliation flushes a dirty var on the
    // first edge into a block whose plan lacks it, so a var that is in
    // every block's plan (or pinned) never flushes.
    let mut flushable = VarSet::new(n_vars);
    for (v, var) in module.iter_vars() {
        if var.pinned_nvm {
            continue;
        }
        let lacking = module.iter_funcs().any(|(f, func)| {
            func.iter_blocks()
                .any(|(b, _)| im.plan.get_ref(f, b).is_none_or(|plan| !plan.contains(v)))
        });
        if lacking {
            flushable.insert(v);
        }
    }

    // Vars ever stored while VM-resident (dirty-data candidates).
    let mut vm_stored = VarSet::new(n_vars);
    for (f, func) in module.iter_funcs() {
        for (b, block) in func.iter_blocks() {
            let plan = im.plan.get_ref(f, b);
            for inst in &block.insts {
                if let Inst::Store { var, .. } = inst {
                    if !module.var(*var).pinned_nvm && plan.is_some_and(|p| p.contains(*var)) {
                        vm_stored.insert(*var);
                    }
                }
            }
        }
    }

    // Bottom-up transitive effect summaries.
    let cg = CallGraph::new(module);
    let order = cg
        .bottom_up_order(module)
        .map_err(|e| PlacementError::Recursive { func: e.func })?;
    let mut ctx = AnalysisCtx {
        im,
        module,
        flushable,
        vm_stored,
        effects: vec![
            FuncEffects {
                reads: VarSet::new(n_vars),
                writes: VarSet::new(n_vars),
            };
            module.funcs.len()
        ],
    };
    for fid in order {
        let func = module.func(fid);
        let mut fx = FuncEffects {
            reads: VarSet::new(n_vars),
            writes: VarSet::new(n_vars),
        };
        for (b, block) in func.iter_blocks() {
            for inst in &block.insts {
                match ctx.event(fid, b, inst) {
                    Event::Read(v) => {
                        fx.reads.insert(v);
                    }
                    Event::Write(v) => {
                        fx.writes.insert(v);
                    }
                    Event::ReadWrite(v) => {
                        fx.reads.insert(v);
                        fx.writes.insert(v);
                    }
                    Event::Call(g) => {
                        let callee = &ctx.effects[g.index()];
                        let (r, w) = (callee.reads.clone(), callee.writes.clone());
                        fx.reads.union_with(&r);
                        fx.writes.union_with(&w);
                    }
                    Event::None | Event::Boundary(_) | Event::MaybeBoundary(_) => {}
                }
            }
        }
        ctx.effects[fid.index()] = fx;
    }

    // Per-function region dataflow.
    let entry_func = module.entry_func();
    let mut regions: Vec<RegionInfo> = Vec::new();
    let mut anomalies: Vec<Anomaly> = Vec::new();
    for (fid, func) in module.iter_funcs() {
        analyze_function(&ctx, fid, func, entry_func, &mut regions, &mut anomalies);
    }

    // Classify.
    let policy = im.policy;
    for r in &mut regions {
        r.class = if r.wars > 0 {
            if policy == FailurePolicy::WaitRecharge && placement_sound {
                RegionClass::Shielded
            } else {
                RegionClass::Hazardous
            }
        } else if r.has_write {
            RegionClass::WarFree
        } else {
            RegionClass::Idempotent
        };
    }

    anomalies.sort_by_key(|a| (a.region, a.var));
    regions.sort_by_key(|r| r.start);
    Ok(AnomalyReport { regions, anomalies })
}

fn analyze_function(
    ctx: &AnalysisCtx<'_>,
    fid: FuncId,
    func: &schematic_ir::Function,
    entry_func: FuncId,
    regions: &mut Vec<RegionInfo>,
    anomalies: &mut Vec<Anomaly>,
) {
    // Region slots: 0 = entry context, then one per checkpoint site.
    let mut slot_starts: Vec<RegionStart> = vec![if fid == entry_func {
        RegionStart::Boot
    } else {
        RegionStart::FuncEntry(fid)
    }];
    let mut site_slot: BTreeMap<Site, usize> = BTreeMap::new();
    for (b, block) in func.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Inst::Checkpoint { id } | Inst::CondCheckpoint { id, .. } = inst {
                let site = Site {
                    func: fid,
                    block: b,
                    inst: i,
                };
                site_slot.insert(site, slot_starts.len());
                slot_starts.push(RegionStart::Checkpoint { id: *id, site });
            }
        }
    }
    let n_slots = slot_starts.len();

    // has_write / war vars accumulate per slot across the fixpoint (facts
    // only grow, so re-visits can only re-discover the same events).
    let mut has_write = vec![false; n_slots];
    let mut war: Vec<BTreeMap<VarId, (Site, Site)>> = vec![BTreeMap::new(); n_slots];

    let cfg = schematic_ir::Cfg::new(func);
    let mut in_states: Vec<BlockState> = vec![vec![None; n_slots]; func.blocks.len()];
    // Entry context starts live at the function entry. For the program
    // entry its initial reads are the boot restore set (NVM loads before
    // the first instruction runs).
    let mut entry_reads = RegionReads::new();
    if fid == entry_func {
        let entry_site = Site {
            func: fid,
            block: func.entry,
            inst: 0,
        };
        for &v in &ctx.im.boot_restore {
            entry_reads.insert(v, entry_site);
        }
    }
    in_states[func.entry.index()][0] = Some(entry_reads);

    let mut worklist: Vec<BlockId> = cfg.reverse_postorder();
    let mut queued = vec![true; func.blocks.len()];
    while let Some(b) = worklist.pop() {
        queued[b.index()] = false;
        let mut state = in_states[b.index()].clone();
        let block = func.block(b);
        for (i, inst) in block.insts.iter().enumerate() {
            let site = Site {
                func: fid,
                block: b,
                inst: i,
            };
            let read = |state: &mut BlockState, v: VarId| {
                for fact in state.iter_mut().flatten() {
                    fact.entry(v).or_insert(site);
                }
            };
            let write = |state: &mut BlockState,
                         has_write: &mut Vec<bool>,
                         war: &mut Vec<BTreeMap<VarId, (Site, Site)>>,
                         v: VarId| {
                for (slot, fact) in state.iter_mut().enumerate() {
                    let Some(fact) = fact else { continue };
                    has_write[slot] = true;
                    if let Some(&read_site) = fact.get(&v) {
                        war[slot].entry(v).or_insert((read_site, site));
                    }
                }
            };
            match ctx.event(fid, b, inst) {
                Event::None => {}
                Event::Read(v) => read(&mut state, v),
                Event::Write(v) => write(&mut state, &mut has_write, &mut war, v),
                Event::ReadWrite(v) => {
                    // Fault-load first: the deferred flush can pair with it.
                    read(&mut state, v);
                    write(&mut state, &mut has_write, &mut war, v);
                }
                Event::Call(g) => {
                    let fx = &ctx.effects[g.index()];
                    for (slot, fact) in state.iter_mut().enumerate() {
                        let Some(fact) = fact else { continue };
                        if !fx.writes.is_empty() {
                            has_write[slot] = true;
                        }
                        for v in fx.writes.iter() {
                            if let Some(&read_site) = fact.get(&v) {
                                war[slot].entry(v).or_insert((read_site, site));
                            }
                        }
                        for v in fx.reads.iter() {
                            fact.entry(v).or_insert(site);
                        }
                    }
                }
                Event::Boundary(id) => {
                    let slot = site_slot[&site];
                    for fact in state.iter_mut() {
                        *fact = None;
                    }
                    state[slot] = Some(region_entry_reads(ctx, id, site));
                    if ctx.carryover(id) {
                        has_write[slot] = true;
                    }
                }
                Event::MaybeBoundary(id) => {
                    let slot = site_slot[&site];
                    let mut fired = vec![None; n_slots];
                    fired[slot] = Some(region_entry_reads(ctx, id, site));
                    merge_into(&mut state, &fired);
                    if ctx.carryover(id) {
                        has_write[slot] = true;
                    }
                }
            }
        }
        for succ in cfg.succs(b) {
            if merge_into(&mut in_states[succ.index()], &state) && !queued[succ.index()] {
                queued[succ.index()] = true;
                worklist.push(*succ);
            }
        }
    }

    for (slot, start) in slot_starts.into_iter().enumerate() {
        for (&v, &(read_site, write_site)) in &war[slot] {
            anomalies.push(Anomaly {
                region: start,
                var: v,
                read_site,
                write_site,
            });
        }
        regions.push(RegionInfo {
            start,
            class: RegionClass::Idempotent, // overwritten by the caller
            wars: war[slot].len(),
            has_write: has_write[slot],
        });
    }
}

/// The reads a region begins with: the checkpoint's restore set is loaded
/// from NVM when execution resumes at the checkpoint (after a sleep, a
/// commit-time migration fault, or a power failure).
fn region_entry_reads(ctx: &AnalysisCtx<'_>, id: CheckpointId, site: Site) -> RegionReads {
    let mut reads = RegionReads::new();
    if let Some(spec) = ctx.im.spec(id) {
        for &v in &spec.restore_vars {
            reads.insert(v, site);
        }
    }
    reads
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_emu::{AllocationPlan, CheckpointSpec, InstrumentedModule};
    use schematic_ir::{FunctionBuilder, ModuleBuilder, Variable};

    /// x = load v; store v, x+1 — classic WAR when v is NVM-resident.
    fn war_module(with_checkpoint_between: bool) -> InstrumentedModule {
        let mut mb = ModuleBuilder::new("war");
        let v = mb.var(Variable::scalar("v"));
        let mut f = FunctionBuilder::new("main", 0);
        let x = f.load_scalar(v);
        let y = f.bin(schematic_ir::BinOp::Add, x, 1);
        f.store_scalar(v, y);
        f.ret(None);
        let main = mb.func(f.finish());
        let module = mb.finish(main);
        let mut im = InstrumentedModule::bare(module);
        if with_checkpoint_between {
            // Insert a plain checkpoint between the load and the store.
            let id = im.add_spec(CheckpointSpec::registers_only());
            let insts = &mut im.module.funcs[0].blocks[0].insts;
            insts.insert(1, Inst::Checkpoint { id });
        }
        im
    }

    #[test]
    fn detects_simple_war() {
        let im = war_module(false);
        let report = check_anomalies(&im, true).unwrap();
        assert_eq!(report.anomalies.len(), 1);
        let a = &report.anomalies[0];
        assert_eq!(a.region, RegionStart::Boot);
        assert_eq!(a.var, VarId(0));
        assert!(a.read_site < a.write_site);
        // Rollback policy + hazard → hazardous.
        assert_eq!(report.hazardous(), 1);
        assert!(!report.is_sound());
    }

    #[test]
    fn checkpoint_between_read_and_write_clears_hazard() {
        let im = war_module(true);
        let report = check_anomalies(&im, true).unwrap();
        assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
        assert!(report.is_sound());
        // Two regions: boot (read only) and the checkpoint's (write only).
        assert_eq!(report.regions.len(), 2);
        assert!(report.war_free());
    }

    #[test]
    fn wait_recharge_shields_war() {
        let mut im = war_module(false);
        im.policy = FailurePolicy::WaitRecharge;
        let report = check_anomalies(&im, true).unwrap();
        assert_eq!(report.anomalies.len(), 1);
        assert_eq!(report.hazardous(), 0);
        assert_eq!(report.class_counts(), [0, 0, 1, 0]);
        assert!(report.is_sound());
        // An unsound placement removes the shield.
        let report = check_anomalies(&im, false).unwrap();
        assert_eq!(report.hazardous(), 1);
    }

    #[test]
    fn all_vm_plan_is_idempotent() {
        // Same WAR pattern, but v lives in VM everywhere: the dirty copy
        // never flushes, so no NVM write exists.
        let mut im = war_module(false);
        im.plan = AllocationPlan::all_vm(&im.module);
        let report = check_anomalies(&im, true).unwrap();
        assert!(report.anomalies.is_empty());
        assert_eq!(report.class_counts(), [1, 0, 0, 0]);
    }

    #[test]
    fn vm_store_with_flush_is_a_write() {
        // v in VM in block 0 only; block 1's plan lacks it, so the dirty
        // copy flushes on the edge — the store is an NVM write event.
        let mut mb = ModuleBuilder::new("flush");
        let v = mb.var(Variable::scalar("v"));
        let mut f = FunctionBuilder::new("main", 0);
        let x = f.load_scalar(v);
        f.store_scalar(v, x);
        let exit = f.new_block("exit");
        f.br(exit);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        let module = mb.finish(main);
        let mut im = InstrumentedModule::bare(module);
        let mut set = VarSet::new(1);
        set.insert(v);
        im.plan.set(FuncId(0), BlockId(0), set);
        let report = check_anomalies(&im, true).unwrap();
        // load (NVM read — wait, v is in VM in block 0; the load is a
        // potential fault-read) then store (deferred flush): WAR.
        assert_eq!(report.anomalies.len(), 1);
    }

    #[test]
    fn restore_set_seeds_region_reads() {
        // checkpoint restores v, then the region stores v: WAR.
        let mut mb = ModuleBuilder::new("seed");
        let v = mb.var(Variable::scalar("v"));
        let mut f = FunctionBuilder::new("main", 0);
        f.store_scalar(v, 7);
        f.ret(None);
        let main = mb.func(f.finish());
        let module = mb.finish(main);
        let mut im = InstrumentedModule::bare(module);
        let id = im.add_spec(CheckpointSpec {
            save_vars: vec![],
            restore_vars: vec![v],
            kind: CheckpointKind::Plain,
        });
        im.module.funcs[0].blocks[0]
            .insts
            .insert(0, Inst::Checkpoint { id });
        let report = check_anomalies(&im, true).unwrap();
        assert_eq!(report.anomalies.len(), 1);
        assert!(matches!(
            report.anomalies[0].region,
            RegionStart::Checkpoint { .. }
        ));
    }

    #[test]
    fn guarded_checkpoint_keeps_skip_path_live() {
        // load v; guarded checkpoint; store v — on the skip path the read
        // survives, so the boot region still has the WAR.
        let mut mb = ModuleBuilder::new("guard");
        let v = mb.var(Variable::scalar("v"));
        let mut f = FunctionBuilder::new("main", 0);
        let x = f.load_scalar(v);
        f.store_scalar(v, x);
        f.ret(None);
        let main = mb.func(f.finish());
        let module = mb.finish(main);
        let mut im = InstrumentedModule::bare(module);
        let id = im.add_spec(CheckpointSpec {
            save_vars: vec![],
            restore_vars: vec![],
            kind: CheckpointKind::Guarded { threshold: 0.5 },
        });
        im.module.funcs[0].blocks[0]
            .insts
            .insert(1, Inst::Checkpoint { id });
        let report = check_anomalies(&im, true).unwrap();
        let boot_wars: Vec<_> = report
            .anomalies
            .iter()
            .filter(|a| a.region == RegionStart::Boot)
            .collect();
        assert_eq!(boot_wars.len(), 1);
    }

    #[test]
    fn loop_carried_war_is_detected() {
        // loop body: x = load v; store v, x — read and write in the same
        // iteration is read-then-write; also carried around the back-edge.
        let mut mb = ModuleBuilder::new("loop");
        let v = mb.var(Variable::scalar("v"));
        let n = mb.var(Variable::scalar("n").with_init(vec![4]));
        let mut f = FunctionBuilder::new("main", 0);
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        f.br(header);
        f.switch_to(header);
        let i = f.load_scalar(n);
        let c = f.cmp(schematic_ir::CmpOp::SGt, i, 0);
        f.cond_br(c, body, exit);
        f.switch_to(body);
        let x = f.load_scalar(v);
        f.store_scalar(v, x);
        let i2 = f.bin(schematic_ir::BinOp::Sub, i, 1);
        f.store_scalar(n, i2);
        f.br(header);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        f_assert_loop(mb.finish(main));
    }

    fn f_assert_loop(module: Module) {
        let im = InstrumentedModule::bare(module);
        let report = check_anomalies(&im, true).unwrap();
        let vars: Vec<VarId> = report.anomalies.iter().map(|a| a.var).collect();
        assert!(vars.contains(&VarId(0)), "{:?}", report.anomalies);
        assert!(vars.contains(&VarId(1)), "{:?}", report.anomalies);
    }

    #[test]
    fn callee_write_pairs_with_caller_read() {
        // main: load v; call g  —  g: store v.
        let mut mb = ModuleBuilder::new("inter");
        let v = mb.var(Variable::scalar("v"));
        let mut g = FunctionBuilder::new("g", 0);
        g.store_scalar(v, 1);
        g.ret(None);
        let gid = mb.func(g.finish());
        let mut f = FunctionBuilder::new("main", 0);
        let _ = f.load_scalar(v);
        f.call_void(gid, vec![]);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let report = check_anomalies(&im, true).unwrap();
        let boot: Vec<_> = report
            .anomalies
            .iter()
            .filter(|a| a.region == RegionStart::Boot)
            .collect();
        assert_eq!(boot.len(), 1);
        assert_eq!(boot[0].var, v);
        // The write site is the call.
        assert_eq!(boot[0].write_site.inst, 1);
    }

    #[test]
    fn callee_read_pairs_with_caller_write() {
        // main: call g; store v  —  g: load v.
        let mut mb = ModuleBuilder::new("inter2");
        let v = mb.var(Variable::scalar("v"));
        let mut g = FunctionBuilder::new("g", 0);
        let _ = g.load_scalar(v);
        g.ret(None);
        let gid = mb.func(g.finish());
        let mut f = FunctionBuilder::new("main", 0);
        f.call_void(gid, vec![]);
        f.store_scalar(v, 2);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let report = check_anomalies(&im, true).unwrap();
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.region == RegionStart::Boot && a.var == v));
    }

    #[test]
    fn verdict_mentions_counts() {
        let im = war_module(false);
        let report = check_anomalies(&im, true).unwrap();
        let v = report.verdict();
        assert!(v.contains("hazardous"), "{v}");
    }
}
