//! Static WAR-hazard / idempotence analysis over inter-checkpoint regions.
//!
//! SCHEMATIC's soundness argument (§II-B) has two halves. Forward progress
//! — every inter-checkpoint stretch fits in `EB` — is re-checked by
//! [`crate::pverify`]. This module checks the other half: **no memory
//! anomalies**. Re-executing a region after a power failure must not
//! observe NVM state clobbered by the first attempt; following Surbatovich
//! et al., the dangerous pattern is a *WAR hazard* — an NVM-level read of a
//! location followed, in the same inter-checkpoint region, by an NVM-level
//! write to it. After a failure the region restarts and the read sees the
//! written (post-first-attempt) value instead of the at-checkpoint value.
//!
//! The analysis is **index-sensitive**: every NVM event carries a
//! [`Footprint`] — a strided set of word offsets within the variable,
//! derived from the strided-interval register analysis in
//! [`crate::range`] — so a read of `buf[2i+1]` and a write of `buf[2i]`
//! are provably disjoint instead of colliding on the whole-array cell.
//!
//! The analysis works directly on an [`InstrumentedModule`]: the
//! allocation plan decides which accesses touch NVM (mirroring the
//! emulator's `resolve_class`: pinned → NVM, in-plan → VM, otherwise NVM),
//! and checkpoint intrinsics delimit regions. Every NVM-level event the
//! emulator can generate is over-approximated, with its footprint:
//!
//! | instruction              | NVM events modeled                         |
//! |--------------------------|--------------------------------------------|
//! | `load` (NVM class)       | read of the indexed words                  |
//! | `load` (VM class)        | read of the *whole* variable — the VM copy |
//! |                          | may be invalid and fault-load from NVM     |
//! | `store` (NVM class)      | write of the indexed words                 |
//! | `store` (VM scalar)      | whole write*, only if the dirty copy can   |
//! |                          | later be flushed by residency reconcile    |
//! | `store` (VM array)       | whole read (fault load) then whole write*  |
//! | `savevar`                | whole write (explicit flush)               |
//! | `restorevar`             | whole read (reload if invalid)             |
//! | `call f`                 | callee summary: whole reads/writes of `f`  |
//! |                          | and everything it calls                    |
//! | `checkpoint` (plain)     | region boundary; `restore_vars` become the |
//! |                          | next region's entry reads (whole)          |
//! | `checkpoint` (guarded) / | boundary on the fire path *and*            |
//! | `condcheckpoint`         | transparent on the skip path               |
//!
//! \* A VM store's eventual NVM write (the reconcile-time flush) is
//! attributed to the store site: while a variable is dirty its VM copy
//! stays valid, so no NVM-level read of it can occur between the store and
//! its flush — every read-before-flush is also a read-before-store.
//! Checkpoint *commits* flush `save_vars` atomically with the resume image
//! and are never re-executed, so they are not write events.
//!
//! Each region is classified on a four-point lattice
//! ([`RegionClass`]): `Idempotent` ⊑ `WarFree` ⊑ `Shielded` ⊑ `Hazardous`.
//! A region with NVM writes is *downgraded* to `Idempotent` when, for
//! every variable, its accumulated write footprint is provably disjoint
//! from its accumulated read footprint (and no dirty VM data carries over
//! a commit): replayed reads then see exactly the at-checkpoint NVM
//! state, so re-execution recomputes identical values and the repeated
//! writes are idempotent. `Shielded` captures the SCHEMATIC/ROCKCLIMB
//! case: WARs exist on paper, but under
//! [`FailurePolicy::WaitRecharge`] with a verified placement the runtime
//! sleeps at every checkpoint until the capacitor is full, so regions
//! never re-execute and the hazards are latent. They are still reported
//! (the dynamic shadow recorder in `schematic-emu` checks its per-element
//! observations against the predicted footprints) but do not make the
//! program unsound.
//!
//! On top of the region facts, [`check_anomalies_bounded`] computes a
//! worst-case **re-execution bound** for every region under
//! [`FailurePolicy::Rollback`]: the checkpoint's resume cost plus the
//! energy of every block the region can reach, each taken at its full
//! loop trip product. A region whose bound exceeds the checkpoint
//! interval's energy budget `EB` (or that reaches a loop with no trip
//! annotation) is flagged `over_budget` — it may roll back again before
//! reaching its next checkpoint. The flag is informational (forward
//! progress is the province of [`crate::pverify`]); `soundcheck
//! --explain` surfaces it per region.
//!
//! Entry point: [`check_anomalies`] (or [`check_anomalies_bounded`] with
//! a cost table); [`crate::analyze::check_all`] folds this together with
//! the forward-progress verifier.

use crate::error::PlacementError;
use crate::range::{index_ranges, Footprint, IndexRanges, Range};
use schematic_emu::{CheckpointKind, FailurePolicy, InstrumentedModule};
use schematic_energy::{CostTable, Energy, MemClass};
use schematic_ir::{
    BlockId, CallGraph, CheckpointId, FuncId, Inst, LoopForest, Module, VarId, VarSet,
};
use std::collections::BTreeMap;
use std::fmt;

/// A program point: instruction `inst` of block `block` in `func`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Site {
    /// Function containing the event.
    pub func: FuncId,
    /// Block containing the event.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: usize,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:i{}", self.func, self.block, self.inst)
    }
}

/// Where an inter-checkpoint region begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegionStart {
    /// First boot of the entry function (no checkpoint committed yet).
    Boot,
    /// The region fragment live at a non-entry function's entry — the
    /// continuation of whichever caller region was active at the call.
    FuncEntry(FuncId),
    /// The region opened when the checkpoint at `site` commits.
    Checkpoint {
        /// Checkpoint table index.
        id: CheckpointId,
        /// The checkpoint instruction's location.
        site: Site,
    },
}

impl fmt::Display for RegionStart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionStart::Boot => write!(f, "boot"),
            RegionStart::FuncEntry(func) => write!(f, "entry of {func}"),
            RegionStart::Checkpoint { id, site } => write!(f, "{id}@{site}"),
        }
    }
}

/// One statically detected WAR hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anomaly {
    /// The inter-checkpoint region the hazard lives in.
    pub region: RegionStart,
    /// The NVM-resident variable read then written.
    pub var: VarId,
    /// The (earliest known) NVM-level read of `var` in the region. For
    /// reads seeded by a checkpoint's restore set this is the checkpoint
    /// site itself; for reads contributed by a callee it is the call site.
    pub read_site: Site,
    /// The NVM-level write that clobbers `var` while the read is still in
    /// the region. For writes inside a callee this is the call site.
    pub write_site: Site,
    /// Union of the word offsets the offending writes may clobber. Every
    /// per-element WAR the shadow recorder can observe on `var` in this
    /// region is covered by this footprint.
    pub footprint: Footprint,
}

/// Classification of one inter-checkpoint region, ordered from harmless to
/// unsound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RegionClass {
    /// Re-execution is provably safe: either no NVM-level write can
    /// happen in the region, or every variable's write footprint is
    /// disjoint from its read footprint (index facts), so replayed reads
    /// see unclobbered NVM and the writes repeat identically.
    Idempotent,
    /// NVM writes happen, but never to a variable read earlier in the
    /// region — yet disjointness of the touched *words* could not be
    /// proven (e.g. a write-then-read of the same element).
    WarFree,
    /// WAR hazards exist, but the failure policy is wait-for-recharge with
    /// a verified placement, so the region never re-executes and the
    /// hazards stay latent.
    Shielded,
    /// WAR hazards exist and the region can re-execute (rollback policy,
    /// or an unverified placement): a power failure can corrupt results.
    Hazardous,
}

impl fmt::Display for RegionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegionClass::Idempotent => "idempotent",
            RegionClass::WarFree => "war-free",
            RegionClass::Shielded => "shielded",
            RegionClass::Hazardous => "hazardous",
        };
        f.write_str(s)
    }
}

/// The accumulated NVM read/write footprints of one variable while a
/// region is live — the index facts behind a disjointness downgrade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionAccess {
    /// The variable.
    pub var: VarId,
    /// Union of all word offsets the region may NVM-read.
    pub read: Footprint,
    /// Union of all word offsets the region may NVM-write.
    pub write: Footprint,
}

/// Summary of one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInfo {
    /// Where the region begins.
    pub start: RegionStart,
    /// Soundness class.
    pub class: RegionClass,
    /// Number of distinct variables with a WAR hazard in this region.
    pub wars: usize,
    /// Whether any NVM-level write can occur in the region.
    pub has_write: bool,
    /// Writes exist but every variable's write footprint is provably
    /// disjoint from its read footprint — the index-facts downgrade to
    /// `Idempotent`.
    pub writes_disjoint: bool,
    /// Per-variable accumulated NVM footprints (sorted by variable), for
    /// diagnostics and `soundcheck --explain`.
    pub accesses: Vec<RegionAccess>,
    /// Worst-case energy to re-execute the region once after a rollback:
    /// resume cost at the region's start plus every reachable block at
    /// its full loop trip product. `None` under
    /// [`FailurePolicy::WaitRecharge`] (regions never re-execute), when
    /// no cost table was supplied ([`check_anomalies`]), or when a
    /// reachable loop has no trip annotation.
    pub reexec_bound: Option<Energy>,
    /// `Rollback` region whose re-execution bound exceeds — or cannot be
    /// proven within — the checkpoint interval's energy budget.
    pub over_budget: bool,
}

/// The result of [`check_anomalies`]: every region's classification plus
/// the flat hazard list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyReport {
    /// One entry per static region (fragments at function entries count
    /// separately; a dynamic region spanning calls may appear as several
    /// fragments).
    pub regions: Vec<RegionInfo>,
    /// All detected hazards, deduplicated per `(region, var)`.
    pub anomalies: Vec<Anomaly>,
}

impl AnomalyReport {
    /// Number of regions in each class, indexed by [`RegionClass`] order.
    pub fn class_counts(&self) -> [usize; 4] {
        let mut counts = [0; 4];
        for r in &self.regions {
            counts[r.class as usize] += 1;
        }
        counts
    }

    /// Number of `Hazardous` regions — the unsoundness count.
    pub fn hazardous(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| r.class == RegionClass::Hazardous)
            .count()
    }

    /// `true` when no region is worse than `WarFree` — no WAR exists even
    /// on paper.
    pub fn war_free(&self) -> bool {
        self.regions.iter().all(|r| r.class <= RegionClass::WarFree)
    }

    /// `true` when no region is `Hazardous` (latent, shielded WARs are
    /// allowed).
    pub fn is_sound(&self) -> bool {
        self.hazardous() == 0
    }

    /// The set of variables involved in any predicted WAR, across all
    /// regions. The emulator's shadow recorder asserts that every WAR it
    /// observes at runtime is on one of these variables.
    pub fn predicted_war_vars(&self, n_vars: usize) -> VarSet {
        let mut set = VarSet::new(n_vars);
        for a in &self.anomalies {
            set.insert(a.var);
        }
        set
    }

    /// Per-element contract: is a runtime-observed WAR on word `elem` of
    /// `var` covered by some predicted anomaly footprint?
    pub fn predicts_element(&self, var: VarId, elem: u32) -> bool {
        self.anomalies
            .iter()
            .any(|a| a.var == var && a.footprint.contains(elem))
    }

    /// Sorted, deduplicated names of the variables involved in any
    /// predicted WAR — for human-readable verdicts.
    pub fn war_var_names<'m>(&self, module: &'m Module) -> Vec<&'m str> {
        let mut names: Vec<&str> = self
            .anomalies
            .iter()
            .map(|a| module.var(a.var).name.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// One-line human-readable summary.
    pub fn verdict(&self) -> String {
        let [idem, free, shielded, hazardous] = self.class_counts();
        format!(
            "{} region(s): {idem} idempotent, {free} war-free, {shielded} shielded, \
             {hazardous} hazardous",
            self.regions.len()
        )
    }
}

/// The NVM-level events one instruction can generate, with the word
/// footprints they touch.
#[derive(Debug, Clone, Copy)]
enum Event {
    None,
    Read(VarId, Footprint),
    Write(VarId, Footprint),
    /// Whole-array fault load then deferred flush (VM array store).
    ReadWrite(VarId, Footprint, Footprint),
    Call(FuncId),
    /// Always commits: ends every live region, opens a new one.
    Boundary(CheckpointId),
    /// May commit (guarded / periodic): opens a new region on the fire
    /// path while live regions flow through on the skip path.
    MaybeBoundary(CheckpointId),
}

/// Per-function transitive NVM effect summary (through all callees,
/// ignoring internal checkpoints — a conservative superset for call
/// sites). Callee accesses are summarized at whole-variable granularity.
#[derive(Debug, Clone, Default)]
struct FuncEffects {
    reads: VarSet,
    writes: VarSet,
}

/// Everything the per-function dataflow needs from the module.
struct AnalysisCtx<'a> {
    im: &'a InstrumentedModule,
    module: &'a Module,
    /// Vars whose dirty VM copy can ever be flushed back to NVM by
    /// residency reconciliation: non-pinned and absent from at least one
    /// block's plan.
    flushable: VarSet,
    /// Vars stored while VM-resident anywhere in the module (candidates
    /// for carrying dirty data across a rollback-policy commit).
    vm_stored: VarSet,
    effects: Vec<FuncEffects>,
    /// Per-function strided-interval facts for every indexed access.
    ranges: Vec<IndexRanges>,
}

impl<'a> AnalysisCtx<'a> {
    /// Every word of `v`.
    fn whole(&self, v: VarId) -> Footprint {
        Footprint::whole(self.module.var(v).words)
    }

    /// The words an indexed access at instruction `i` of `(f, b)` may
    /// touch, per the strided-interval analysis. A missing index means
    /// word 0 (scalar addressing).
    fn indexed(&self, f: FuncId, b: BlockId, i: usize, v: VarId, has_idx: bool) -> Footprint {
        let words = self.module.var(v).words;
        let r = if has_idx {
            self.ranges[f.index()].idx_range(b, i)
        } else {
            Range::constant(0)
        };
        Footprint::of_range(r, words)
    }

    fn event(&self, f: FuncId, b: BlockId, i: usize, inst: &Inst) -> Event {
        let in_vm = |v: VarId| {
            !self.module.var(v).pinned_nvm
                && self
                    .im
                    .plan
                    .get_ref(f, b)
                    .is_some_and(|plan| plan.contains(v))
        };
        match inst {
            Inst::Load { var, idx, .. } => {
                if in_vm(*var) {
                    // A potential fault-load stages the whole variable.
                    Event::Read(*var, self.whole(*var))
                } else {
                    Event::Read(*var, self.indexed(f, b, i, *var, idx.is_some()))
                }
            }
            Inst::Store { var, idx, .. } => {
                if !in_vm(*var) {
                    Event::Write(*var, self.indexed(f, b, i, *var, idx.is_some()))
                } else if !self.flushable.contains(*var) {
                    // The dirty copy can never reach NVM (all-VM plans):
                    // an array store may still fault-load the array.
                    if idx.is_some() {
                        Event::Read(*var, self.whole(*var))
                    } else {
                        Event::None
                    }
                } else if idx.is_some() {
                    Event::ReadWrite(*var, self.whole(*var), self.whole(*var))
                } else {
                    Event::Write(*var, self.whole(*var))
                }
            }
            Inst::SaveVar { var } => Event::Write(*var, self.whole(*var)),
            Inst::RestoreVar { var } => Event::Read(*var, self.whole(*var)),
            Inst::Call { func, .. } => Event::Call(*func),
            Inst::Checkpoint { id } => match self.im.spec(*id).map(|s| s.kind) {
                Some(CheckpointKind::Guarded { .. }) => Event::MaybeBoundary(*id),
                _ => Event::Boundary(*id),
            },
            Inst::CondCheckpoint { id, .. } => Event::MaybeBoundary(*id),
            _ => Event::None,
        }
    }

    /// Variables whose dirty data can survive the commit of checkpoint
    /// `id` and flush to NVM later, inside the next region: flushable,
    /// VM-stored somewhere, and not persisted by the commit itself. Only
    /// rollback-policy commits preserve VM contents.
    fn carryover(&self, id: CheckpointId) -> bool {
        if self.im.policy != FailurePolicy::Rollback {
            return false;
        }
        let Some(spec) = self.im.spec(id) else {
            return false;
        };
        self.flushable
            .iter()
            .any(|v| self.vm_stored.contains(v) && !spec.save_vars.contains(&v))
    }
}

/// One region's knowledge of a variable at a program point: the earliest
/// known read site and the union of word offsets read since the region
/// started.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ReadFact {
    site: Site,
    fp: Footprint,
}

/// Dataflow fact for one live region at one program point.
type RegionReads = BTreeMap<VarId, ReadFact>;

/// Per-block dataflow state: one optional fact per region slot of the
/// enclosing function (slot 0 = the entry-context region, then one slot
/// per checkpoint site). `None` = the region is not live here.
type BlockState = Vec<Option<RegionReads>>;

fn merge_into(dst: &mut BlockState, src: &BlockState) -> bool {
    let mut changed = false;
    for (d, s) in dst.iter_mut().zip(src) {
        match (d.as_mut(), s) {
            (_, None) => {}
            (None, Some(m)) => {
                *d = Some(m.clone());
                changed = true;
            }
            (Some(dm), Some(sm)) => {
                for (&v, rf) in sm {
                    match dm.get_mut(&v) {
                        None => {
                            dm.insert(v, rf.clone());
                            changed = true;
                        }
                        Some(existing) => {
                            if rf.site < existing.site {
                                existing.site = rf.site;
                                changed = true;
                            }
                            if existing.fp.union_with(&rf.fp) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
    }
    changed
}

/// Checks an instrumented program for WAR-hazard memory anomalies.
///
/// `placement_sound` is the forward-progress verdict from
/// [`crate::pverify::verify_placement`]; it decides whether latent WARs
/// under a wait-for-recharge policy are `Shielded` or `Hazardous`.
/// Re-execution bounds are not computed (every region reports
/// `reexec_bound: None`); use [`check_anomalies_bounded`] for those.
///
/// # Errors
///
/// Fails only on recursive call graphs ([`PlacementError::Recursive`]),
/// which no technique in this repository produces.
pub fn check_anomalies(
    im: &InstrumentedModule,
    placement_sound: bool,
) -> Result<AnomalyReport, PlacementError> {
    check_anomalies_inner(im, placement_sound, None)
}

/// Like [`check_anomalies`], additionally classifying every
/// [`FailurePolicy::Rollback`] region against its worst-case
/// re-execution cost: resume cost plus all reachable blocks at full trip
/// counts, priced by `table`, compared to the interval budget `eb`.
///
/// # Errors
///
/// Fails only on recursive call graphs ([`PlacementError::Recursive`]).
pub fn check_anomalies_bounded(
    im: &InstrumentedModule,
    placement_sound: bool,
    table: &CostTable,
    eb: Energy,
) -> Result<AnomalyReport, PlacementError> {
    check_anomalies_inner(im, placement_sound, Some((table, eb)))
}

fn check_anomalies_inner(
    im: &InstrumentedModule,
    placement_sound: bool,
    bounds: Option<(&CostTable, Energy)>,
) -> Result<AnomalyReport, PlacementError> {
    let module = &im.module;
    let n_vars = module.vars.len();

    // Flushable set: residency reconciliation flushes a dirty var on the
    // first edge into a block whose plan lacks it, so a var that is in
    // every block's plan (or pinned) never flushes.
    let mut flushable = VarSet::new(n_vars);
    for (v, var) in module.iter_vars() {
        if var.pinned_nvm {
            continue;
        }
        let lacking = module.iter_funcs().any(|(f, func)| {
            func.iter_blocks()
                .any(|(b, _)| im.plan.get_ref(f, b).is_none_or(|plan| !plan.contains(v)))
        });
        if lacking {
            flushable.insert(v);
        }
    }

    // Vars ever stored while VM-resident (dirty-data candidates).
    let mut vm_stored = VarSet::new(n_vars);
    for (f, func) in module.iter_funcs() {
        for (b, block) in func.iter_blocks() {
            let plan = im.plan.get_ref(f, b);
            for inst in &block.insts {
                if let Inst::Store { var, .. } = inst {
                    if !module.var(*var).pinned_nvm && plan.is_some_and(|p| p.contains(*var)) {
                        vm_stored.insert(*var);
                    }
                }
            }
        }
    }

    // Bottom-up transitive effect summaries.
    let cg = CallGraph::new(module);
    let order = cg
        .bottom_up_order(module)
        .map_err(|e| PlacementError::Recursive { func: e.func })?;
    let ranges: Vec<IndexRanges> = module.iter_funcs().map(|(_, f)| index_ranges(f)).collect();
    let mut ctx = AnalysisCtx {
        im,
        module,
        flushable,
        vm_stored,
        effects: vec![
            FuncEffects {
                reads: VarSet::new(n_vars),
                writes: VarSet::new(n_vars),
            };
            module.funcs.len()
        ],
        ranges,
    };
    for fid in order {
        let func = module.func(fid);
        let mut fx = FuncEffects {
            reads: VarSet::new(n_vars),
            writes: VarSet::new(n_vars),
        };
        for (b, block) in func.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                match ctx.event(fid, b, i, inst) {
                    Event::Read(v, fp) => {
                        if !fp.is_empty() {
                            fx.reads.insert(v);
                        }
                    }
                    Event::Write(v, fp) => {
                        if !fp.is_empty() {
                            fx.writes.insert(v);
                        }
                    }
                    Event::ReadWrite(v, ..) => {
                        fx.reads.insert(v);
                        fx.writes.insert(v);
                    }
                    Event::Call(g) => {
                        let callee = &ctx.effects[g.index()];
                        let (r, w) = (callee.reads.clone(), callee.writes.clone());
                        fx.reads.union_with(&r);
                        fx.writes.union_with(&w);
                    }
                    Event::None | Event::Boundary(_) | Event::MaybeBoundary(_) => {}
                }
            }
        }
        ctx.effects[fid.index()] = fx;
    }

    // Per-function region dataflow.
    let entry_func = module.entry_func();
    let mut regions: Vec<RegionInfo> = Vec::new();
    let mut anomalies: Vec<Anomaly> = Vec::new();
    for (fid, func) in module.iter_funcs() {
        analyze_function(
            &ctx,
            fid,
            func,
            entry_func,
            bounds,
            &mut regions,
            &mut anomalies,
        );
    }

    // Classify.
    let policy = im.policy;
    for r in &mut regions {
        r.class = if r.wars > 0 {
            if policy == FailurePolicy::WaitRecharge && placement_sound {
                RegionClass::Shielded
            } else {
                RegionClass::Hazardous
            }
        } else if !r.has_write || r.writes_disjoint {
            RegionClass::Idempotent
        } else {
            RegionClass::WarFree
        };
    }

    anomalies.sort_by_key(|a| (a.region, a.var));
    regions.sort_by_key(|r| r.start);
    Ok(AnomalyReport { regions, anomalies })
}

fn analyze_function(
    ctx: &AnalysisCtx<'_>,
    fid: FuncId,
    func: &schematic_ir::Function,
    entry_func: FuncId,
    bounds: Option<(&CostTable, Energy)>,
    regions: &mut Vec<RegionInfo>,
    anomalies: &mut Vec<Anomaly>,
) {
    // Region slots: 0 = entry context, then one per checkpoint site.
    let mut slot_starts: Vec<RegionStart> = vec![if fid == entry_func {
        RegionStart::Boot
    } else {
        RegionStart::FuncEntry(fid)
    }];
    // The block where each slot's region opens (for the re-execution
    // bound: the opening block itself is reachable by the region).
    let mut slot_blocks: Vec<BlockId> = vec![func.entry];
    let mut site_slot: BTreeMap<Site, usize> = BTreeMap::new();
    for (b, block) in func.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Inst::Checkpoint { id } | Inst::CondCheckpoint { id, .. } = inst {
                let site = Site {
                    func: fid,
                    block: b,
                    inst: i,
                };
                site_slot.insert(site, slot_starts.len());
                slot_starts.push(RegionStart::Checkpoint { id: *id, site });
                slot_blocks.push(b);
            }
        }
    }
    let n_slots = slot_starts.len();

    // Per-slot accumulators across the fixpoint (facts only grow, so
    // re-visits can only re-discover the same events): total read/write
    // footprints per variable, WAR sites with offending write footprints,
    // and the dirty-carryover flag.
    let mut reads_total: Vec<BTreeMap<VarId, Footprint>> = vec![BTreeMap::new(); n_slots];
    let mut writes_total: Vec<BTreeMap<VarId, Footprint>> = vec![BTreeMap::new(); n_slots];
    let mut war: Vec<BTreeMap<VarId, (Site, Site, Footprint)>> = vec![BTreeMap::new(); n_slots];
    let mut carry = vec![false; n_slots];

    let cfg = schematic_ir::Cfg::new(func);
    let mut in_states: Vec<BlockState> = vec![vec![None; n_slots]; func.blocks.len()];
    // Entry context starts live at the function entry. For the program
    // entry its initial reads are the boot restore set (NVM loads before
    // the first instruction runs).
    let mut entry_reads = RegionReads::new();
    if fid == entry_func {
        let entry_site = Site {
            func: fid,
            block: func.entry,
            inst: 0,
        };
        for &v in &ctx.im.boot_restore {
            let fp = ctx.whole(v);
            reads_total[0]
                .entry(v)
                .or_insert_with(Footprint::empty)
                .union_with(&fp);
            entry_reads.insert(
                v,
                ReadFact {
                    site: entry_site,
                    fp,
                },
            );
        }
    }
    in_states[func.entry.index()][0] = Some(entry_reads);

    let mut worklist: Vec<BlockId> = cfg.reverse_postorder();
    let mut queued = vec![true; func.blocks.len()];
    while let Some(b) = worklist.pop() {
        queued[b.index()] = false;
        let mut state = in_states[b.index()].clone();
        let block = func.block(b);
        for (i, inst) in block.insts.iter().enumerate() {
            let site = Site {
                func: fid,
                block: b,
                inst: i,
            };
            let read = |state: &mut BlockState,
                        reads_total: &mut Vec<BTreeMap<VarId, Footprint>>,
                        v: VarId,
                        fp: Footprint| {
                if fp.is_empty() {
                    return;
                }
                for (slot, fact) in state.iter_mut().enumerate() {
                    let Some(fact) = fact else { continue };
                    reads_total[slot]
                        .entry(v)
                        .or_insert_with(Footprint::empty)
                        .union_with(&fp);
                    match fact.get_mut(&v) {
                        None => {
                            fact.insert(v, ReadFact { site, fp });
                        }
                        Some(rf) => {
                            rf.fp.union_with(&fp);
                        }
                    }
                }
            };
            let write = |state: &mut BlockState,
                         writes_total: &mut Vec<BTreeMap<VarId, Footprint>>,
                         war: &mut Vec<BTreeMap<VarId, (Site, Site, Footprint)>>,
                         v: VarId,
                         fp: Footprint| {
                if fp.is_empty() {
                    return;
                }
                for (slot, fact) in state.iter_mut().enumerate() {
                    let Some(fact) = fact else { continue };
                    writes_total[slot]
                        .entry(v)
                        .or_insert_with(Footprint::empty)
                        .union_with(&fp);
                    if let Some(rf) = fact.get(&v) {
                        if fp.intersects(&rf.fp) {
                            let acc =
                                war[slot]
                                    .entry(v)
                                    .or_insert((rf.site, site, Footprint::empty()));
                            acc.2.union_with(&fp);
                        }
                    }
                }
            };
            match ctx.event(fid, b, i, inst) {
                Event::None => {}
                Event::Read(v, fp) => read(&mut state, &mut reads_total, v, fp),
                Event::Write(v, fp) => write(&mut state, &mut writes_total, &mut war, v, fp),
                Event::ReadWrite(v, rfp, wfp) => {
                    // Fault-load first: the deferred flush can pair with it.
                    read(&mut state, &mut reads_total, v, rfp);
                    write(&mut state, &mut writes_total, &mut war, v, wfp);
                }
                Event::Call(g) => {
                    let fx = &ctx.effects[g.index()];
                    // Callee writes pair against pre-call reads first,
                    // then callee reads seed the facts at the call site.
                    for v in fx.writes.iter() {
                        let fp = ctx.whole(v);
                        write(&mut state, &mut writes_total, &mut war, v, fp);
                    }
                    for v in fx.reads.iter() {
                        let fp = ctx.whole(v);
                        read(&mut state, &mut reads_total, v, fp);
                    }
                }
                Event::Boundary(id) => {
                    let slot = site_slot[&site];
                    for fact in state.iter_mut() {
                        *fact = None;
                    }
                    let entry = region_entry_reads(ctx, id, site);
                    for (v, rf) in &entry {
                        reads_total[slot]
                            .entry(*v)
                            .or_insert_with(Footprint::empty)
                            .union_with(&rf.fp);
                    }
                    state[slot] = Some(entry);
                    if ctx.carryover(id) {
                        carry[slot] = true;
                    }
                }
                Event::MaybeBoundary(id) => {
                    let slot = site_slot[&site];
                    let entry = region_entry_reads(ctx, id, site);
                    for (v, rf) in &entry {
                        reads_total[slot]
                            .entry(*v)
                            .or_insert_with(Footprint::empty)
                            .union_with(&rf.fp);
                    }
                    let mut fired = vec![None; n_slots];
                    fired[slot] = Some(entry);
                    merge_into(&mut state, &fired);
                    if ctx.carryover(id) {
                        carry[slot] = true;
                    }
                }
            }
        }
        for succ in cfg.succs(b) {
            if merge_into(&mut in_states[succ.index()], &state) && !queued[succ.index()] {
                queued[succ.index()] = true;
                worklist.push(*succ);
            }
        }
    }

    let slot_bounds = bounds.map(|(table, eb)| {
        slot_reexec_bounds(
            ctx,
            fid,
            func,
            &in_states,
            &slot_blocks,
            table,
            eb,
            &slot_starts,
        )
    });

    for (slot, start) in slot_starts.into_iter().enumerate() {
        for (&v, &(read_site, write_site, footprint)) in &war[slot] {
            anomalies.push(Anomaly {
                region: start,
                var: v,
                read_site,
                write_site,
                footprint,
            });
        }
        let has_write = carry[slot] || !writes_total[slot].is_empty();
        let writes_disjoint = has_write
            && !carry[slot]
            && writes_total[slot]
                .iter()
                .all(|(v, w)| reads_total[slot].get(v).is_none_or(|r| !w.intersects(r)));
        let mut vars: Vec<VarId> = reads_total[slot]
            .keys()
            .chain(writes_total[slot].keys())
            .copied()
            .collect();
        vars.sort_unstable();
        vars.dedup();
        let accesses = vars
            .into_iter()
            .map(|v| RegionAccess {
                var: v,
                read: reads_total[slot]
                    .get(&v)
                    .copied()
                    .unwrap_or_else(Footprint::empty),
                write: writes_total[slot]
                    .get(&v)
                    .copied()
                    .unwrap_or_else(Footprint::empty),
            })
            .collect();
        let (reexec_bound, over_budget) = slot_bounds.as_ref().map_or((None, false), |b| b[slot]);
        regions.push(RegionInfo {
            start,
            class: RegionClass::Idempotent, // overwritten by the caller
            wars: war[slot].len(),
            has_write,
            writes_disjoint,
            accesses,
            reexec_bound,
            over_budget,
        });
    }
}

/// Worst-case re-execution bound per region slot, under
/// [`FailurePolicy::Rollback`]: the resume cost of the region's
/// checkpoint plus the execution energy of every block where the region
/// is live, each multiplied by the trip product of its enclosing loops.
/// A reachable loop without a trip annotation makes the bound unknown —
/// conservatively over budget.
#[allow(clippy::too_many_arguments)]
fn slot_reexec_bounds(
    ctx: &AnalysisCtx<'_>,
    fid: FuncId,
    func: &schematic_ir::Function,
    in_states: &[BlockState],
    slot_blocks: &[BlockId],
    table: &CostTable,
    eb: Energy,
    slot_starts: &[RegionStart],
) -> Vec<(Option<Energy>, bool)> {
    if ctx.im.policy != FailurePolicy::Rollback {
        return vec![(None, false); slot_starts.len()];
    }
    let forest = LoopForest::of(func);
    let n_blocks = func.blocks.len();
    let mut block_energy = Vec::with_capacity(n_blocks);
    let mut block_trips: Vec<Option<u64>> = Vec::with_capacity(n_blocks);
    for (b, block) in func.iter_blocks() {
        let plan = ctx.im.plan.get_ref(fid, b);
        let mem_of = |v: VarId| {
            if !ctx.module.var(v).pinned_nvm && plan.is_some_and(|p| p.contains(v)) {
                MemClass::Vm
            } else {
                MemClass::Nvm
            }
        };
        let mut e = Energy::ZERO;
        for inst in &block.insts {
            e = e.saturating_add(table.inst_cost(inst, mem_of).energy);
        }
        block_energy.push(e.saturating_add(table.term_cost(&block.term).energy));
        let trips = {
            let mut t = Some(1u64);
            let mut cur = forest.innermost_of(b);
            while let Some(ix) = cur {
                t = t.and_then(|n| forest.loops[ix].max_iters.map(|m| n.saturating_mul(m)));
                cur = forest.loops[ix].parent;
            }
            t
        };
        block_trips.push(trips);
    }
    slot_starts
        .iter()
        .enumerate()
        .map(|(slot, start)| {
            let resume_words = match start {
                RegionStart::Boot => ctx
                    .im
                    .boot_restore
                    .iter()
                    .map(|v| ctx.module.var(*v).words)
                    .sum(),
                // A fragment continuing a caller's region: the resume
                // cost is attributed to the caller's slot.
                RegionStart::FuncEntry(_) => 0,
                RegionStart::Checkpoint { id, .. } => {
                    ctx.im.spec(*id).map_or(0, |s| s.restore_words(ctx.module))
                }
            };
            let mut bound = match start {
                RegionStart::FuncEntry(_) => Some(Energy::ZERO),
                _ => Some(table.checkpoint_resume_cost(resume_words).energy),
            };
            for bi in 0..n_blocks {
                let live = in_states[bi][slot].is_some() || slot_blocks[slot].index() == bi;
                if !live {
                    continue;
                }
                bound = match (bound, block_trips[bi]) {
                    (Some(e), Some(t)) => {
                        Some(e.saturating_add(block_energy[bi].saturating_mul(t)))
                    }
                    _ => None,
                };
            }
            let over_budget = bound.is_none_or(|e| e > eb);
            (bound, over_budget)
        })
        .collect()
}

/// The reads a region begins with: the checkpoint's restore set is loaded
/// from NVM when execution resumes at the checkpoint (after a sleep, a
/// commit-time migration fault, or a power failure).
fn region_entry_reads(ctx: &AnalysisCtx<'_>, id: CheckpointId, site: Site) -> RegionReads {
    let mut reads = RegionReads::new();
    if let Some(spec) = ctx.im.spec(id) {
        for &v in &spec.restore_vars {
            reads.insert(
                v,
                ReadFact {
                    site,
                    fp: ctx.whole(v),
                },
            );
        }
    }
    reads
}

/// The variables that could participate in a WAR under the *worst*
/// allocation (the bare all-NVM wrapping), per the index-sensitive
/// analysis — i.e. the vars whose shielding still earns its keep.
/// Variables whose accesses are index-proven disjoint never appear. Used
/// by the gain function's `war_shield_bias` mode; conservatively returns
/// every variable for recursive modules (which no technique produces).
pub fn potential_war_vars(module: &Module) -> VarSet {
    let n_vars = module.vars.len();
    let im = InstrumentedModule::bare(module.clone());
    match check_anomalies(&im, false) {
        Ok(report) => report.predicted_war_vars(n_vars),
        Err(_) => {
            let mut all = VarSet::new(n_vars);
            for (v, _) in module.iter_vars() {
                all.insert(v);
            }
            all
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_emu::{AllocationPlan, CheckpointSpec, InstrumentedModule};
    use schematic_ir::{FunctionBuilder, ModuleBuilder, Variable};

    /// x = load v; store v, x+1 — classic WAR when v is NVM-resident.
    fn war_module(with_checkpoint_between: bool) -> InstrumentedModule {
        let mut mb = ModuleBuilder::new("war");
        let v = mb.var(Variable::scalar("v"));
        let mut f = FunctionBuilder::new("main", 0);
        let x = f.load_scalar(v);
        let y = f.bin(schematic_ir::BinOp::Add, x, 1);
        f.store_scalar(v, y);
        f.ret(None);
        let main = mb.func(f.finish());
        let module = mb.finish(main);
        let mut im = InstrumentedModule::bare(module);
        if with_checkpoint_between {
            // Insert a plain checkpoint between the load and the store.
            let id = im.add_spec(CheckpointSpec::registers_only());
            let insts = &mut im.module.funcs[0].blocks[0].insts;
            insts.insert(1, Inst::Checkpoint { id });
        }
        im
    }

    #[test]
    fn detects_simple_war() {
        let im = war_module(false);
        let report = check_anomalies(&im, true).unwrap();
        assert_eq!(report.anomalies.len(), 1);
        let a = &report.anomalies[0];
        assert_eq!(a.region, RegionStart::Boot);
        assert_eq!(a.var, VarId(0));
        assert!(a.read_site < a.write_site);
        assert!(a.footprint.contains(0));
        // Rollback policy + hazard → hazardous.
        assert_eq!(report.hazardous(), 1);
        assert!(!report.is_sound());
    }

    #[test]
    fn checkpoint_between_read_and_write_clears_hazard() {
        let im = war_module(true);
        let report = check_anomalies(&im, true).unwrap();
        assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
        assert!(report.is_sound());
        // Two regions: boot (read only) and the checkpoint's (write only).
        assert_eq!(report.regions.len(), 2);
        assert!(report.war_free());
        // The write-only region is proven idempotent by disjointness
        // (nothing it writes is read in-region).
        assert_eq!(report.class_counts(), [2, 0, 0, 0]);
    }

    #[test]
    fn wait_recharge_shields_war() {
        let mut im = war_module(false);
        im.policy = FailurePolicy::WaitRecharge;
        let report = check_anomalies(&im, true).unwrap();
        assert_eq!(report.anomalies.len(), 1);
        assert_eq!(report.hazardous(), 0);
        assert_eq!(report.class_counts(), [0, 0, 1, 0]);
        assert!(report.is_sound());
        // An unsound placement removes the shield.
        let report = check_anomalies(&im, false).unwrap();
        assert_eq!(report.hazardous(), 1);
    }

    #[test]
    fn all_vm_plan_is_idempotent() {
        // Same WAR pattern, but v lives in VM everywhere: the dirty copy
        // never flushes, so no NVM write exists.
        let mut im = war_module(false);
        im.plan = AllocationPlan::all_vm(&im.module);
        let report = check_anomalies(&im, true).unwrap();
        assert!(report.anomalies.is_empty());
        assert_eq!(report.class_counts(), [1, 0, 0, 0]);
    }

    #[test]
    fn vm_store_with_flush_is_a_write() {
        // v in VM in block 0 only; block 1's plan lacks it, so the dirty
        // copy flushes on the edge — the store is an NVM write event.
        let mut mb = ModuleBuilder::new("flush");
        let v = mb.var(Variable::scalar("v"));
        let mut f = FunctionBuilder::new("main", 0);
        let x = f.load_scalar(v);
        f.store_scalar(v, x);
        let exit = f.new_block("exit");
        f.br(exit);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        let module = mb.finish(main);
        let mut im = InstrumentedModule::bare(module);
        let mut set = VarSet::new(1);
        set.insert(v);
        im.plan.set(FuncId(0), BlockId(0), set);
        let report = check_anomalies(&im, true).unwrap();
        // load (NVM read — wait, v is in VM in block 0; the load is a
        // potential fault-read) then store (deferred flush): WAR.
        assert_eq!(report.anomalies.len(), 1);
    }

    #[test]
    fn restore_set_seeds_region_reads() {
        // checkpoint restores v, then the region stores v: WAR.
        let mut mb = ModuleBuilder::new("seed");
        let v = mb.var(Variable::scalar("v"));
        let mut f = FunctionBuilder::new("main", 0);
        f.store_scalar(v, 7);
        f.ret(None);
        let main = mb.func(f.finish());
        let module = mb.finish(main);
        let mut im = InstrumentedModule::bare(module);
        let id = im.add_spec(CheckpointSpec {
            save_vars: vec![],
            restore_vars: vec![v],
            kind: CheckpointKind::Plain,
        });
        im.module.funcs[0].blocks[0]
            .insts
            .insert(0, Inst::Checkpoint { id });
        let report = check_anomalies(&im, true).unwrap();
        assert_eq!(report.anomalies.len(), 1);
        assert!(matches!(
            report.anomalies[0].region,
            RegionStart::Checkpoint { .. }
        ));
    }

    #[test]
    fn guarded_checkpoint_keeps_skip_path_live() {
        // load v; guarded checkpoint; store v — on the skip path the read
        // survives, so the boot region still has the WAR.
        let mut mb = ModuleBuilder::new("guard");
        let v = mb.var(Variable::scalar("v"));
        let mut f = FunctionBuilder::new("main", 0);
        let x = f.load_scalar(v);
        f.store_scalar(v, x);
        f.ret(None);
        let main = mb.func(f.finish());
        let module = mb.finish(main);
        let mut im = InstrumentedModule::bare(module);
        let id = im.add_spec(CheckpointSpec {
            save_vars: vec![],
            restore_vars: vec![],
            kind: CheckpointKind::Guarded { threshold: 0.5 },
        });
        im.module.funcs[0].blocks[0]
            .insts
            .insert(1, Inst::Checkpoint { id });
        let report = check_anomalies(&im, true).unwrap();
        let boot_wars: Vec<_> = report
            .anomalies
            .iter()
            .filter(|a| a.region == RegionStart::Boot)
            .collect();
        assert_eq!(boot_wars.len(), 1);
    }

    #[test]
    fn loop_carried_war_is_detected() {
        // loop body: x = load v; store v, x — read and write in the same
        // iteration is read-then-write; also carried around the back-edge.
        let mut mb = ModuleBuilder::new("loop");
        let v = mb.var(Variable::scalar("v"));
        let n = mb.var(Variable::scalar("n").with_init(vec![4]));
        let mut f = FunctionBuilder::new("main", 0);
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        f.br(header);
        f.switch_to(header);
        let i = f.load_scalar(n);
        let c = f.cmp(schematic_ir::CmpOp::SGt, i, 0);
        f.cond_br(c, body, exit);
        f.switch_to(body);
        let x = f.load_scalar(v);
        f.store_scalar(v, x);
        let i2 = f.bin(schematic_ir::BinOp::Sub, i, 1);
        f.store_scalar(n, i2);
        f.br(header);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        f_assert_loop(mb.finish(main));
    }

    fn f_assert_loop(module: Module) {
        let im = InstrumentedModule::bare(module);
        let report = check_anomalies(&im, true).unwrap();
        let vars: Vec<VarId> = report.anomalies.iter().map(|a| a.var).collect();
        assert!(vars.contains(&VarId(0)), "{:?}", report.anomalies);
        assert!(vars.contains(&VarId(1)), "{:?}", report.anomalies);
    }

    #[test]
    fn callee_write_pairs_with_caller_read() {
        // main: load v; call g  —  g: store v.
        let mut mb = ModuleBuilder::new("inter");
        let v = mb.var(Variable::scalar("v"));
        let mut g = FunctionBuilder::new("g", 0);
        g.store_scalar(v, 1);
        g.ret(None);
        let gid = mb.func(g.finish());
        let mut f = FunctionBuilder::new("main", 0);
        let _ = f.load_scalar(v);
        f.call_void(gid, vec![]);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let report = check_anomalies(&im, true).unwrap();
        let boot: Vec<_> = report
            .anomalies
            .iter()
            .filter(|a| a.region == RegionStart::Boot)
            .collect();
        assert_eq!(boot.len(), 1);
        assert_eq!(boot[0].var, v);
        // The write site is the call.
        assert_eq!(boot[0].write_site.inst, 1);
    }

    #[test]
    fn callee_read_pairs_with_caller_write() {
        // main: call g; store v  —  g: load v.
        let mut mb = ModuleBuilder::new("inter2");
        let v = mb.var(Variable::scalar("v"));
        let mut g = FunctionBuilder::new("g", 0);
        let _ = g.load_scalar(v);
        g.ret(None);
        let gid = mb.func(g.finish());
        let mut f = FunctionBuilder::new("main", 0);
        f.call_void(gid, vec![]);
        f.store_scalar(v, 2);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let report = check_anomalies(&im, true).unwrap();
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.region == RegionStart::Boot && a.var == v));
    }

    #[test]
    fn verdict_mentions_counts() {
        let im = war_module(false);
        let report = check_anomalies(&im, true).unwrap();
        let v = report.verdict();
        assert!(v.contains("hazardous"), "{v}");
        assert_eq!(report.war_var_names(&im.module), vec!["v"]);
    }

    #[test]
    fn disjoint_constant_indices_downgrade() {
        // r = load a[0]; store a[1], r — provably disjoint words: no
        // anomaly, and the region is idempotent despite the NVM write.
        let mut mb = ModuleBuilder::new("disjoint");
        let a = mb.var(Variable::array("a", 4));
        let mut f = FunctionBuilder::new("main", 0);
        let r = f.load_idx(a, 0);
        f.store_idx(a, 1, r);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let report = check_anomalies(&im, true).unwrap();
        assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
        assert_eq!(report.class_counts(), [1, 0, 0, 0]);
        let region = &report.regions[0];
        assert!(region.has_write);
        assert!(region.writes_disjoint);
        let acc = &region.accesses[0];
        assert_eq!(acc.read.to_string(), "[0]");
        assert_eq!(acc.write.to_string(), "[1]");
    }

    #[test]
    fn same_element_war_keeps_footprint() {
        // load a[2]; store a[2] — per-element WAR on word 2 only.
        let mut mb = ModuleBuilder::new("elem");
        let a = mb.var(Variable::array("a", 4));
        let mut f = FunctionBuilder::new("main", 0);
        let r = f.load_idx(a, 2);
        f.store_idx(a, 2, r);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let report = check_anomalies(&im, true).unwrap();
        assert_eq!(report.anomalies.len(), 1);
        let a0 = &report.anomalies[0];
        assert!(a0.footprint.contains(2));
        assert!(!a0.footprint.contains(1));
        assert!(report.predicts_element(a0.var, 2));
        assert!(!report.predicts_element(a0.var, 3));
    }

    #[test]
    fn strided_loop_proven_disjoint() {
        // for i in 0..: r = load a[2i+1]; store a[2i], r — reads the odd
        // words, writes the even words: index-proven idempotent.
        let mut mb = ModuleBuilder::new("stride");
        let a = mb.var(Variable::array("a", 8));
        let mut f = FunctionBuilder::new("main", 0);
        let i = f.copy(0);
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        f.br(header);
        f.switch_to(header);
        let c = f.cmp(schematic_ir::CmpOp::SLt, i, 4);
        f.cond_br(c, body, exit);
        f.switch_to(body);
        let even = f.bin(schematic_ir::BinOp::Mul, i, 2);
        let odd = f.bin(schematic_ir::BinOp::Add, even, 1);
        let r = f.load_idx(a, odd);
        f.store_idx(a, even, r);
        let i2 = f.bin(schematic_ir::BinOp::Add, i, 1);
        f.copy_to(i, i2);
        f.br(header);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let report = check_anomalies(&im, true).unwrap();
        assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
        assert_eq!(report.class_counts(), [1, 0, 0, 0]);
        assert!(report.regions[0].writes_disjoint);
    }

    #[test]
    fn write_only_region_downgrades_to_idempotent() {
        // store v, 7 with nothing read: idempotent (was war-free under
        // the index-insensitive analysis).
        let mut mb = ModuleBuilder::new("wonly");
        let v = mb.var(Variable::scalar("v"));
        let mut f = FunctionBuilder::new("main", 0);
        f.store_scalar(v, 7);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let report = check_anomalies(&im, true).unwrap();
        assert_eq!(report.class_counts(), [1, 0, 0, 0]);
        assert!(report.regions[0].writes_disjoint);
    }

    #[test]
    fn write_then_read_same_element_stays_war_free() {
        // store a[1]; load a[1] — not a WAR (write first), but the words
        // overlap so the disjointness downgrade must not fire.
        let mut mb = ModuleBuilder::new("wr");
        let a = mb.var(Variable::array("a", 4));
        let mut f = FunctionBuilder::new("main", 0);
        f.store_idx(a, 1, 9);
        let _ = f.load_idx(a, 1);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let report = check_anomalies(&im, true).unwrap();
        assert!(report.anomalies.is_empty());
        assert_eq!(report.class_counts(), [0, 1, 0, 0]);
        assert!(!report.regions[0].writes_disjoint);
    }

    #[test]
    fn reexec_bound_classifies_against_budget() {
        let im = war_module(false); // Rollback policy
        let table = schematic_energy::CostTable::msp430fr5969();
        // A huge budget: bounded and within budget.
        let report = check_anomalies_bounded(&im, true, &table, Energy::from_uj(1000)).unwrap();
        let region = &report.regions[0];
        assert!(region.reexec_bound.is_some());
        assert!(!region.over_budget);
        // A tiny budget: the same bound now exceeds it.
        let report = check_anomalies_bounded(&im, true, &table, Energy::from_pj(1)).unwrap();
        assert!(report.regions[0].over_budget);
        // Without a cost table no bound is computed.
        let report = check_anomalies(&im, true).unwrap();
        assert!(report.regions[0].reexec_bound.is_none());
        assert!(!report.regions[0].over_budget);
    }

    #[test]
    fn unbounded_loop_is_conservatively_over_budget() {
        // A loop with no max_iters annotation: the re-execution bound is
        // unknown, so a Rollback region reaching it flags over_budget.
        let mut mb = ModuleBuilder::new("unbounded");
        let v = mb.var(Variable::scalar("v"));
        let mut f = FunctionBuilder::new("main", 0);
        let header = f.new_block("header");
        let exit = f.new_block("exit");
        f.br(header);
        f.switch_to(header);
        let x = f.load_scalar(v);
        let c = f.cmp(schematic_ir::CmpOp::SGt, x, 0);
        f.cond_br(c, header, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let table = schematic_energy::CostTable::msp430fr5969();
        let report = check_anomalies_bounded(&im, true, &table, Energy::from_uj(1000)).unwrap();
        assert!(report.regions[0].reexec_bound.is_none());
        assert!(report.regions[0].over_budget);
    }

    #[test]
    fn wait_recharge_regions_have_no_bound() {
        let mut im = war_module(false);
        im.policy = FailurePolicy::WaitRecharge;
        let table = schematic_energy::CostTable::msp430fr5969();
        let report = check_anomalies_bounded(&im, true, &table, Energy::from_pj(1)).unwrap();
        assert!(report.regions[0].reexec_bound.is_none());
        assert!(!report.regions[0].over_budget);
    }

    #[test]
    fn potential_war_vars_excludes_disjoint_accesses() {
        // v has a true WAR; a's accesses are index-proven disjoint.
        let mut mb = ModuleBuilder::new("pot");
        let v = mb.var(Variable::scalar("v"));
        let a = mb.var(Variable::array("a", 4));
        let mut f = FunctionBuilder::new("main", 0);
        let x = f.load_scalar(v);
        f.store_scalar(v, x);
        let r = f.load_idx(a, 0);
        f.store_idx(a, 1, r);
        f.ret(None);
        let main = mb.func(f.finish());
        let module = mb.finish(main);
        let wars = potential_war_vars(&module);
        assert!(wars.contains(v));
        assert!(!wars.contains(a));
    }
}
