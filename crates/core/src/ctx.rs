//! Per-function analysis context and the *item* abstraction.
//!
//! Region analysis works over **items**: plain blocks, or already-
//! analyzed loops collapsed into single nodes. Items carry everything
//! the RCG construction needs — execution cost under a candidate
//! allocation, access counts for the gain function, fixed allocations
//! inherited from earlier decisions, and barrier boundary energies for
//! entities containing checkpoints.

use crate::config::SchematicConfig;
use crate::error::{BackEdgeCheckpoint, EdgeDecision};
use crate::summary::{FuncSummary, LoopSummary};
use schematic_energy::{Cost, CostTable, Energy, MemClass};
use schematic_ir::{
    AccessCount, AccessMap, BlockId, Cfg, Edge, FuncId, Inst, LoopForest, Module, VarId,
    VarLiveness, VarSet, WORD_BYTES,
};
use std::collections::HashMap;

/// One node of an analyzed path: a block, or a collapsed (already
/// analyzed) loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Item {
    /// A basic block of the current region.
    Block(BlockId),
    /// An already-analyzed inner loop, by loop-forest index.
    Loop(usize),
}

/// A path of items, with the CFG edge linking each consecutive pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ItemPath {
    /// Path items in execution order.
    pub items: Vec<Item>,
    /// `links[i]` is the CFG edge from `items[i]` to `items[i + 1]`.
    pub links: Vec<Edge>,
}

/// Barrier boundary energies (checkpointed callees / loops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BarrierBounds {
    /// Budget that must remain when the barrier is entered.
    pub entry: Energy,
    /// Budget already consumed when execution emerges from the barrier.
    pub exit: Energy,
    /// Approximate internal energy, for path-cost ranking.
    pub internal: Energy,
}

/// Mutable per-function analysis state.
pub(crate) struct FuncCtx<'a> {
    pub module: &'a Module,
    pub table: &'a CostTable,
    pub config: &'a SchematicConfig,
    pub fid: FuncId,
    pub cfg: Cfg,
    pub forest: LoopForest,
    pub access: AccessMap,
    pub live: VarLiveness,
    pub summaries: &'a [FuncSummary],
    /// Decided VM set per block (`None` = not yet analyzed).
    pub alloc: Vec<Option<VarSet>>,
    /// Checkpoint decision per CFG edge (absent = undecided).
    pub edges: HashMap<Edge, EdgeDecision>,
    /// Summaries of analyzed loops (forest order).
    pub loop_sums: Vec<Option<LoopSummary>>,
    /// Decided conditional back-edge checkpoints.
    pub backedge_cps: Vec<BackEdgeCheckpoint>,
    /// Min energy remaining after executing a block, over committed
    /// paths (paper §III-A.3, `Eleft`).
    pub e_left: Vec<Option<Energy>>,
    /// Max energy needed from a block's start to the next committed
    /// checkpoint (`Eto_leave`).
    pub e_to_leave: Vec<Option<Energy>>,
    /// Variables written anywhere in the module; read-only variables are
    /// never saved at checkpoints (their NVM home is always current).
    pub written: VarSet,
    /// Variables that could form a WAR under an all-NVM allocation, per
    /// the index-sensitive anomaly analysis. Empty unless
    /// [`SchematicConfig::war_shield_bias`] is on.
    pub war_vars: VarSet,
}

impl<'a> FuncCtx<'a> {
    /// Builds a fresh context for `fid`.
    pub fn new(
        module: &'a Module,
        table: &'a CostTable,
        config: &'a SchematicConfig,
        summaries: &'a [FuncSummary],
        effects: &[schematic_ir::CallEffect],
        fid: FuncId,
    ) -> Self {
        let func = module.func(fid);
        let cfg = Cfg::new(func);
        let dom = schematic_ir::Dominators::new(&cfg);
        let forest = LoopForest::new(func, &cfg, &dom);
        let access = AccessMap::new(func);
        let exit_live = if module.entry == Some(fid) {
            VarSet::empty()
        } else {
            VarSet::full(module.vars.len())
        };
        let live = VarLiveness::new(func, &cfg, effects, &exit_live);
        let n = func.blocks.len();
        let n_loops = forest.len();
        let written = schematic_ir::module_written_vars(module);
        let war_vars = if config.war_shield_bias {
            crate::anomaly::potential_war_vars(module)
        } else {
            VarSet::empty()
        };
        FuncCtx {
            module,
            table,
            config,
            fid,
            cfg,
            forest,
            access,
            live,
            summaries,
            alloc: vec![None; n],
            edges: HashMap::new(),
            loop_sums: vec![None; n_loops],
            backedge_cps: Vec::new(),
            e_left: vec![None; n],
            e_to_leave: vec![None; n],
            written,
            war_vars,
        }
    }

    /// The function under analysis.
    pub fn func(&self) -> &'a schematic_ir::Function {
        self.module.func(self.fid)
    }

    /// Decision recorded for an edge.
    pub fn edge_decision(&self, e: Edge) -> EdgeDecision {
        self.edges
            .get(&e)
            .copied()
            .unwrap_or(EdgeDecision::Undecided)
    }

    /// Whether `var` may be placed in VM at all.
    pub fn vm_eligible(&self, var: VarId) -> bool {
        !self.module.var(var).pinned_nvm
    }

    /// Bytes occupied by a variable set in VM.
    pub fn set_bytes(&self, set: &VarSet) -> usize {
        set.iter()
            .map(|v| self.module.var(v).words * WORD_BYTES)
            .sum()
    }

    // ----- item queries -----------------------------------------------------

    /// Whether the item's allocation is already fixed, and what it is.
    pub fn fixed_alloc(&self, item: Item) -> Option<VarSet> {
        match item {
            Item::Block(b) => self.alloc[b.index()].clone(),
            Item::Loop(l) => {
                let s = self.loop_sums[l].as_ref()?;
                if s.has_checkpoint {
                    None // barrier: per-block allocations, no single set
                } else {
                    Some(s.alloc.clone())
                }
            }
        }
    }

    /// Whether the item contains checkpoints (making it a mandatory RCG
    /// waypoint).
    pub fn is_barrier(&self, item: Item) -> bool {
        match item {
            Item::Loop(l) => self.loop_sums[l]
                .as_ref()
                .map(|s| s.has_checkpoint)
                .unwrap_or(false),
            Item::Block(b) => self.block_has_cp_call(b),
        }
    }

    fn block_has_cp_call(&self, b: BlockId) -> bool {
        self.func().block(b).insts.iter().any(|inst| {
            matches!(inst, Inst::Call { func, .. }
                if self.summaries[func.index()].has_checkpoint)
        })
    }

    /// Boundary energies of a barrier item.
    pub fn barrier_bounds(&self, item: Item) -> BarrierBounds {
        match item {
            Item::Loop(l) => {
                let s = self.loop_sums[l].as_ref().expect("analyzed loop");
                BarrierBounds {
                    entry: s.entry_energy,
                    exit: s.exit_energy,
                    internal: s.entry_energy + s.exit_energy,
                }
            }
            Item::Block(b) => self.call_barrier_bounds(b),
        }
    }

    /// Splits a block containing checkpointed calls into
    /// pre-call / post-call boundary energies. With several such calls,
    /// the entry bound uses the first and the exit bound the last; the
    /// gaps between consecutive checkpointed calls are charged to the
    /// exit side (conservative).
    fn call_barrier_bounds(&self, b: BlockId) -> BarrierBounds {
        let func = self.func();
        let block = func.block(b);
        let alloc = self.alloc[b.index()].clone().unwrap_or_else(VarSet::empty);
        let mem_of = |v: VarId| {
            if alloc.contains(v) {
                MemClass::Vm
            } else {
                MemClass::Nvm
            }
        };
        let mut entry = Energy::ZERO;
        let mut exit = Energy::ZERO;
        let mut internal = Energy::ZERO;
        let mut seen_cp_call = false;
        for inst in &block.insts {
            let own = self.table.inst_cost(inst, mem_of).energy;
            let callee_extra = match inst {
                Inst::Call { func: callee, .. } => {
                    let s = &self.summaries[callee.index()];
                    if s.has_checkpoint {
                        // Boundary: close the running segment at the
                        // callee's first checkpoint.
                        if !seen_cp_call {
                            entry += own + s.entry_energy;
                        } else {
                            exit += own + s.entry_energy;
                        }
                        internal += s.entry_energy + s.exit_energy;
                        seen_cp_call = true;
                        exit = s.exit_energy;
                        continue;
                    }
                    s.entry_energy // checkpoint-free: whole-body WCEC
                }
                _ => Energy::ZERO,
            };
            if seen_cp_call {
                exit += own + callee_extra;
            } else {
                entry += own + callee_extra;
            }
        }
        let term = self.table.term_cost(&block.term).energy;
        if seen_cp_call {
            exit += term;
        } else {
            entry += term;
        }
        BarrierBounds {
            entry,
            exit,
            internal,
        }
    }

    /// Execution cost of a non-barrier item under the candidate VM set.
    pub fn item_cost(&self, item: Item, vm: &VarSet) -> Energy {
        match item {
            Item::Loop(l) => self.loop_sums[l].as_ref().expect("analyzed loop").total,
            Item::Block(b) => self.block_cost(b, vm),
        }
    }

    /// Cost of one execution of block `b` under VM set `vm`, including
    /// the whole-body cost of checkpoint-free callees.
    pub fn block_cost(&self, b: BlockId, vm: &VarSet) -> Energy {
        let func = self.func();
        let mem_of = |v: VarId| {
            if vm.contains(v) && self.vm_eligible(v) {
                MemClass::Vm
            } else {
                MemClass::Nvm
            }
        };
        let mut total = Cost::ZERO;
        for inst in &func.block(b).insts {
            total += self.table.inst_cost(inst, mem_of);
            if let Inst::Call { func: callee, .. } = inst {
                let s = &self.summaries[callee.index()];
                debug_assert!(
                    !s.has_checkpoint,
                    "barrier blocks must not be costed as plain items"
                );
                total += Cost::new(0, s.entry_energy);
            }
        }
        total += self.table.term_cost(&func.block(b).term);
        total.energy
    }

    /// Access counts contributed by an item (own accesses plus folded
    /// checkpoint-free callees; collapsed loops are trip-scaled).
    pub fn item_access(&self, item: Item) -> HashMap<VarId, AccessCount> {
        match item {
            Item::Loop(l) => self.loop_sums[l]
                .as_ref()
                .expect("analyzed loop")
                .access
                .clone(),
            Item::Block(b) => {
                let mut counts = self.access.block(b).clone();
                for inst in &self.func().block(b).insts {
                    if let Inst::Call { func: callee, .. } = inst {
                        for (&v, &c) in &self.summaries[callee.index()].access {
                            *counts.entry(v).or_default() += c;
                        }
                    }
                }
                counts
            }
        }
    }

    /// Variables whose VM placement is imposed on any interval
    /// containing the item (checkpoint-free callee allocations).
    pub fn item_mandatory_vm(&self, item: Item) -> VarSet {
        match item {
            Item::Loop(_) => VarSet::empty(), // covered by fixed_alloc
            Item::Block(b) => {
                let mut set = VarSet::empty();
                for inst in &self.func().block(b).insts {
                    if let Inst::Call { func: callee, .. } = inst {
                        let s = &self.summaries[callee.index()];
                        if !s.has_checkpoint {
                            set.union_with(&s.vm_vars);
                        }
                    }
                }
                set
            }
        }
    }

    /// Extra VM bytes the item needs for frozen inner structures
    /// (checkpointed callees restoring their own state).
    pub fn item_reserved_bytes(&self, item: Item) -> usize {
        match item {
            Item::Loop(l) => self.loop_sums[l].as_ref().map(|s| s.vm_bytes).unwrap_or(0),
            Item::Block(b) => {
                let mut bytes = 0;
                for inst in &self.func().block(b).insts {
                    if let Inst::Call { func: callee, .. } = inst {
                        bytes = bytes.max(self.summaries[callee.index()].vm_bytes);
                    }
                }
                bytes
            }
        }
    }

    /// The restore set at a checkpoint resuming into `target` with VM
    /// set `vm`: arrays always reload (partial writes need the backing
    /// data); scalars reload only if live (their first access may be a
    /// read). Without the liveness optimization everything reloads.
    pub fn restore_set(&self, vm: &VarSet, target: BlockId) -> VarSet {
        let mut set = VarSet::empty();
        for v in vm.iter() {
            let is_array = self.module.var(v).words > 1;
            let keep = if !self.config.liveness_opt {
                true
            } else {
                is_array || self.live.live_in(target).contains(v)
            };
            if keep {
                set.insert(v);
            }
        }
        set
    }

    /// The save set at a checkpoint on `edge` leaving VM set `vm`: a
    /// variable is saved unless it is dead (never read again). Without
    /// the liveness optimization everything is saved.
    pub fn save_set(&self, vm: &VarSet, edge: Edge) -> VarSet {
        let mut set = VarSet::empty();
        for v in vm.iter() {
            if !self.written.contains(v) {
                continue; // read-only: the NVM home is always current
            }
            let keep = if !self.config.liveness_opt {
                true
            } else {
                self.live.live_on_edge(edge.from, edge.to).contains(v)
            };
            if keep {
                set.insert(v);
            }
        }
        set
    }

    /// Words of a variable set.
    pub fn set_words(&self, set: &VarSet) -> usize {
        set.iter().map(|v| self.module.var(v).words).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_ir::{call_effects, CmpOp, FunctionBuilder, ModuleBuilder, Variable};

    fn setup() -> (Module, CostTable, SchematicConfig) {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let t = mb.var(Variable::array("t", 4).pinned());
        let mut f = FunctionBuilder::new("main", 0);
        let l = f.new_block("l");
        let exit = f.new_block("exit");
        let v = f.load_scalar(x);
        f.store_scalar(x, v);
        let _ = f.load_idx(t, 0);
        f.br(l);
        f.switch_to(l);
        f.set_max_iters(l, 3);
        let c = f.cmp(CmpOp::SGt, v, 0);
        f.cond_br(c, l, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        (
            m,
            CostTable::msp430fr5969(),
            SchematicConfig::new(Energy::from_uj(4)),
        )
    }

    #[test]
    fn block_cost_reflects_allocation() {
        let (m, table, config) = setup();
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); m.funcs.len()];
        let ctx = FuncCtx::new(&m, &table, &config, &summaries, &effects, m.entry_func());
        let x = m.var_by_name("x").unwrap();
        let mut vm = VarSet::empty();
        vm.insert(x);
        let nvm_cost = ctx.block_cost(BlockId(0), &VarSet::empty());
        let vm_cost = ctx.block_cost(BlockId(0), &vm);
        assert!(vm_cost < nvm_cost);
        // Pinned variables never become VM even if requested.
        let t = m.var_by_name("t").unwrap();
        let mut with_pinned = vm.clone();
        with_pinned.insert(t);
        assert_eq!(ctx.block_cost(BlockId(0), &with_pinned), vm_cost);
        assert!(!ctx.vm_eligible(t));
        assert!(ctx.vm_eligible(x));
    }

    #[test]
    fn save_restore_sets_respect_liveness() {
        let (m, table, config) = setup();
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); m.funcs.len()];
        let ctx = FuncCtx::new(&m, &table, &config, &summaries, &effects, m.entry_func());
        let x = m.var_by_name("x").unwrap();
        let mut vm = VarSet::empty();
        vm.insert(x);
        // After `exit` (block 2) x is never read: dead at the edge l->exit.
        let save = ctx.save_set(&vm, Edge::new(BlockId(1), BlockId(2)));
        assert!(save.is_empty());
        // x is read at the start of entry: restoring into entry keeps it.
        let restore = ctx.restore_set(&vm, BlockId(0));
        assert!(restore.contains(x));
        // x is not read in exit.
        let restore_exit = ctx.restore_set(&vm, BlockId(2));
        assert!(restore_exit.is_empty());
    }

    #[test]
    fn liveness_opt_off_keeps_everything() {
        let (m, table, mut config) = setup();
        config.liveness_opt = false;
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); m.funcs.len()];
        let ctx = FuncCtx::new(&m, &table, &config, &summaries, &effects, m.entry_func());
        let x = m.var_by_name("x").unwrap();
        let mut vm = VarSet::empty();
        vm.insert(x);
        assert!(ctx
            .save_set(&vm, Edge::new(BlockId(1), BlockId(2)))
            .contains(x));
        assert!(ctx.restore_set(&vm, BlockId(2)).contains(x));
    }

    #[test]
    fn set_bytes_and_words() {
        let (m, table, config) = setup();
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); m.funcs.len()];
        let ctx = FuncCtx::new(&m, &table, &config, &summaries, &effects, m.entry_func());
        let t = m.var_by_name("t").unwrap();
        let mut s = VarSet::empty();
        s.insert(t);
        assert_eq!(ctx.set_bytes(&s), 16);
        assert_eq!(ctx.set_words(&s), 4);
    }
}
