//! Errors of the SCHEMATIC compilation pipeline.

use schematic_energy::Energy;
use schematic_ir::{BlockId, Edge, FuncId};
use std::fmt;

/// A failure during checkpoint placement or memory allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The program is recursive (unsupported, §III-B.1).
    Recursive {
        /// A function on the cycle.
        func: FuncId,
    },
    /// The module failed IR verification before the analysis ran.
    InvalidModule {
        /// First verifier message.
        message: String,
    },
    /// A single instruction sequence cannot fit the budget even after
    /// block splitting (e.g. one instruction's cost exceeds `EB`).
    BudgetTooSmall {
        /// The function affected.
        func: FuncId,
        /// The block whose minimal cost exceeds the budget.
        block: BlockId,
        /// The offending cost.
        cost: Energy,
        /// The budget.
        eb: Energy,
    },
    /// No feasible checkpoint placement exists along a path given the
    /// decisions inherited from earlier paths.
    NoFeasiblePlacement {
        /// The function affected.
        func: FuncId,
        /// First block of the infeasible path.
        at: BlockId,
    },
    /// A callee's boundary energies cannot be bridged inside a single
    /// caller block (two checkpointed calls too close together).
    CallBarrierTooTight {
        /// The caller.
        func: FuncId,
        /// The block containing the calls.
        block: BlockId,
    },
    /// The final instrumented program failed the independent energy
    /// verifier — an internal error worth a bug report.
    Unsound {
        /// Human-readable description of the violated interval.
        detail: String,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::Recursive { func } => {
                write!(f, "recursive call cycle through {func}")
            }
            PlacementError::InvalidModule { message } => {
                write!(f, "invalid module: {message}")
            }
            PlacementError::BudgetTooSmall {
                func,
                block,
                cost,
                eb,
            } => write!(
                f,
                "energy budget too small: {func}:{block} needs {cost} but EB = {eb}"
            ),
            PlacementError::NoFeasiblePlacement { func, at } => {
                write!(f, "no feasible checkpoint placement in {func} near {at}")
            }
            PlacementError::CallBarrierTooTight { func, block } => write!(
                f,
                "checkpointed callees too close together in {func}:{block}"
            ),
            PlacementError::Unsound { detail } => {
                write!(f, "placement verifier rejected the result: {detail}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Checkpoint decision for a CFG edge during the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeDecision {
    /// Not yet considered by any analyzed path.
    Undecided,
    /// A checkpoint will be inserted here.
    Enabled,
    /// Definitively no checkpoint here (decisions are final, §III-A.3).
    Disabled,
}

/// A decided conditional checkpoint on a loop back-edge (Algorithm 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackEdgeCheckpoint {
    /// The back-edge carrying the conditional checkpoint.
    pub edge: Edge,
    /// Fire every `period` iterations (1 = every iteration).
    pub period: u32,
}

impl fmt::Display for EdgeDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeDecision::Undecided => write!(f, "?"),
            EdgeDecision::Enabled => write!(f, "enabled"),
            EdgeDecision::Disabled => write!(f, "disabled"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = PlacementError::BudgetTooSmall {
            func: FuncId(0),
            block: BlockId(1),
            cost: Energy::from_pj(100),
            eb: Energy::from_pj(50),
        };
        assert!(e.to_string().contains("budget too small"));
        assert_eq!(EdgeDecision::Undecided.to_string(), "?");
        assert_eq!(EdgeDecision::Enabled.to_string(), "enabled");
    }
}
