//! The gain function and VM candidate selection (§III-A.2, Eqs. 1–2).
//!
//! For an interval between two potential checkpoint locations, placing a
//! variable `v` in VM gains `ΔEW·nW + ΔER·nR` over its accesses and
//! costs `Esave/restore` at the interval boundaries (scaled by liveness,
//! Eq. 2). Candidates are ranked by **gain / size** so that smaller
//! variables win ties and more of them fit the limited VM
//! (`ratio_ordering`); variables are accepted greedily while their gain
//! is positive and the VM capacity `SVM` holds.

use crate::ctx::FuncCtx;
use schematic_ir::{AccessCount, BlockId, Edge, VarId, VarSet, WORD_BYTES};

/// Outcome of selecting an interval's allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct GainSelection {
    /// The selected VM set (mandatory variables included).
    pub vm: VarSet,
    /// Total positive gain of the selected optional variables, in
    /// picojoules (diagnostic).
    pub total_gain_pj: i128,
}

/// Context describing the interval's boundaries for Eq. 2.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IntervalBounds {
    /// Block the interval resumes into (for restore liveness); `None`
    /// when the interval starts at the region entry without a restore.
    pub resume_into: Option<BlockId>,
    /// Edge on which the closing checkpoint sits (for save liveness);
    /// `None` when the interval runs to the region exit.
    pub save_edge: Option<Edge>,
}

/// Computes Eq. 1 for one variable, in signed picojoules.
pub(crate) fn gain_of(
    ctx: &FuncCtx<'_>,
    var: VarId,
    counts: AccessCount,
    bounds: IntervalBounds,
) -> i128 {
    let read_gain = ctx.table.read_gain().as_pj() as i128;
    let write_gain = ctx.table.write_gain().as_pj() as i128;
    let mut gain = read_gain * counts.reads as i128 + write_gain * counts.writes as i128;

    // `war_shield_bias`: a variable the index-sensitive analysis says
    // could WAR in NVM earns an extra write-gain bonus — keeping it in
    // VM shields the hazard. Variables whose footprints are index-proven
    // disjoint (downgraded regions) get nothing: their shielding is safe
    // to skip.
    if ctx.config.war_shield_bias && ctx.war_vars.contains(var) {
        gain += write_gain * counts.writes as i128;
    }

    // Eq. 2: Esave/restore = Erestore × live(c1) + Esave × live(c2).
    let words = ctx.module.var(var).words;
    let is_array = words > 1;
    let restore_live = match bounds.resume_into {
        None => false, // no checkpoint opens the interval
        Some(target) => {
            if !ctx.config.liveness_opt {
                true
            } else {
                is_array || ctx.live.live_in(target).contains(var)
            }
        }
    };
    let save_live = ctx.written.contains(var)
        && match bounds.save_edge {
            None => false,
            Some(e) => {
                if !ctx.config.liveness_opt {
                    true
                } else {
                    ctx.live.live_on_edge(e.from, e.to).contains(var)
                }
            }
        };
    if restore_live {
        gain -= ctx.table.restore_words_cost(words).energy.as_pj() as i128;
    }
    if save_live {
        gain -= ctx.table.save_words_cost(words).energy.as_pj() as i128;
    }
    gain
}

/// Selects the VM set for an interval.
///
/// * `counts` — aggregated access counts of the interval's undecided
///   items (already trip-scaled where applicable), ascending by
///   `VarId` so candidate ranking is deterministic;
/// * `mandatory` — variables imposed by checkpoint-free callees inside
///   the interval (always included, not gain-ranked);
/// * `capacity_bytes` — VM bytes available to this interval after any
///   barrier reservations.
pub(crate) fn select_allocation(
    ctx: &FuncCtx<'_>,
    counts: &[(VarId, AccessCount)],
    mandatory: &VarSet,
    bounds: IntervalBounds,
    capacity_bytes: usize,
) -> GainSelection {
    let _span = schematic_obs::span("analyze/allocation");
    let mut vm = VarSet::empty();
    let mut used = 0usize;
    for v in mandatory.iter() {
        if ctx.vm_eligible(v) {
            vm.insert(v);
            used += ctx.module.var(v).words * WORD_BYTES;
        }
    }

    // Rank optional candidates.
    let mut candidates: Vec<(VarId, i128, usize)> = counts
        .iter()
        .filter(|(v, _)| ctx.vm_eligible(*v) && !vm.contains(*v))
        .map(|&(v, c)| {
            let g = gain_of(ctx, v, c, bounds);
            (v, g, ctx.module.var(v).bytes())
        })
        .filter(|(_, g, _)| *g > 0)
        .collect();
    if ctx.config.ratio_ordering {
        // gain/size descending: compare g_a * size_b vs g_b * size_a.
        candidates.sort_by(|a, b| {
            let lhs = b.1 * a.2 as i128;
            let rhs = a.1 * b.2 as i128;
            lhs.cmp(&rhs).then(a.0.cmp(&b.0))
        });
    } else {
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    }

    let mut total_gain = 0i128;
    for (v, g, bytes) in candidates {
        if used + bytes <= capacity_bytes {
            vm.insert(v);
            used += bytes;
            total_gain += g;
            if schematic_obs::enabled() {
                // Decision log: every accepted gain-ranked VM candidate
                // (gains are positive here by the filter above).
                schematic_obs::count("alloc/picks", 1);
                schematic_obs::event(
                    "alloc_pick",
                    vec![
                        ("var", ctx.module.var(v).name.as_str().into()),
                        ("gain_pj", u64::try_from(g).unwrap_or(u64::MAX).into()),
                        ("bytes", (bytes as u64).into()),
                    ],
                );
            }
        }
    }
    GainSelection {
        vm,
        total_gain_pj: total_gain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchematicConfig;
    use crate::summary::FuncSummary;
    use schematic_energy::{CostTable, Energy};
    use schematic_ir::{call_effects, FunctionBuilder, Module, ModuleBuilder, Variable};
    use std::collections::HashMap;

    /// Flattens an access map into the sorted-slice form the selector
    /// takes.
    fn sorted_counts(map: &HashMap<VarId, AccessCount>) -> Vec<(VarId, AccessCount)> {
        let mut v: Vec<_> = map.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by_key(|e| e.0);
        v
    }

    fn hot_cold_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let hot = mb.var(Variable::scalar("hot"));
        let cold = mb.var(Variable::array("cold", 64));
        let pinned = mb.var(Variable::scalar("pinned").pinned());
        let mut f = FunctionBuilder::new("main", 0);
        // Many accesses to hot, one to cold, one to pinned.
        let mut r = f.load_scalar(hot);
        for _ in 0..20 {
            f.store_scalar(hot, r);
            r = f.load_scalar(hot);
        }
        let _ = f.load_idx(cold, 0);
        let _ = f.load_scalar(pinned);
        f.ret(Some(r.into()));
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    fn with_ctx<R>(
        module: &Module,
        tweak: impl FnOnce(&mut SchematicConfig),
        run: impl FnOnce(&FuncCtx<'_>) -> R,
    ) -> R {
        let table = CostTable::msp430fr5969();
        let mut config = SchematicConfig::new(Energy::from_uj(4));
        tweak(&mut config);
        let effects = call_effects(module);
        let summaries = vec![FuncSummary::default(); module.funcs.len()];
        let ctx = FuncCtx::new(
            module,
            &table,
            &config,
            &summaries,
            &effects,
            module.entry_func(),
        );
        run(&ctx)
    }

    #[test]
    fn frequently_accessed_scalar_wins() {
        let m = hot_cold_module();
        with_ctx(
            &m,
            |_| {},
            |ctx| {
                let counts = sorted_counts(ctx.access.block(BlockId(0)));
                let bounds = IntervalBounds {
                    resume_into: Some(BlockId(0)),
                    save_edge: None,
                };
                let sel = select_allocation(ctx, &counts, &VarSet::empty(), bounds, 2048);
                let hot = m.var_by_name("hot").unwrap();
                let cold = m.var_by_name("cold").unwrap();
                let pinned = m.var_by_name("pinned").unwrap();
                assert!(sel.vm.contains(hot));
                assert!(
                    !sel.vm.contains(cold),
                    "one access cannot repay a 256 B copy"
                );
                assert!(!sel.vm.contains(pinned));
                assert!(sel.total_gain_pj > 0);
            },
        );
    }

    #[test]
    fn capacity_limits_selection() {
        let m = hot_cold_module();
        with_ctx(
            &m,
            |_| {},
            |ctx| {
                let counts = sorted_counts(ctx.access.block(BlockId(0)));
                let bounds = IntervalBounds {
                    resume_into: None,
                    save_edge: None,
                };
                let sel = select_allocation(ctx, &counts, &VarSet::empty(), bounds, 0);
                assert!(sel.vm.is_empty());
            },
        );
    }

    #[test]
    fn mandatory_vars_always_included() {
        let m = hot_cold_module();
        with_ctx(
            &m,
            |_| {},
            |ctx| {
                let cold = m.var_by_name("cold").unwrap();
                let mut mandatory = VarSet::empty();
                mandatory.insert(cold);
                let sel = select_allocation(
                    ctx,
                    &[],
                    &mandatory,
                    IntervalBounds {
                        resume_into: None,
                        save_edge: None,
                    },
                    2048,
                );
                assert!(sel.vm.contains(cold));
            },
        );
    }

    #[test]
    fn boundary_liveness_reduces_gain() {
        let m = hot_cold_module();
        with_ctx(
            &m,
            |_| {},
            |ctx| {
                let hot = m.var_by_name("hot").unwrap();
                let counts = AccessCount {
                    reads: 2,
                    writes: 0,
                };
                let open = IntervalBounds {
                    resume_into: None,
                    save_edge: None,
                };
                let closed = IntervalBounds {
                    resume_into: Some(BlockId(0)),
                    save_edge: None,
                };
                let g_open = gain_of(ctx, hot, counts, open);
                let g_closed = gain_of(ctx, hot, counts, closed);
                assert!(g_closed < g_open, "restore cost must reduce the gain");
            },
        );
    }

    #[test]
    fn war_shield_bias_boosts_war_vars_only() {
        // v: load-then-store (a real WAR candidate in NVM).
        // a: read word 0, write word 1 — index-proven disjoint.
        let mut mb = ModuleBuilder::new("m");
        let v = mb.var(Variable::scalar("v"));
        let a = mb.var(Variable::array("a", 4));
        let mut f = FunctionBuilder::new("main", 0);
        let x = f.load_scalar(v);
        f.store_scalar(v, x);
        let r = f.load_idx(a, 0);
        f.store_idx(a, 1, r);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let counts = AccessCount {
            reads: 1,
            writes: 1,
        };
        let bounds = IntervalBounds {
            resume_into: None,
            save_edge: None,
        };
        let baseline = with_ctx(
            &m,
            |_| {},
            |ctx| {
                (
                    gain_of(ctx, v, counts, bounds),
                    gain_of(ctx, a, counts, bounds),
                )
            },
        );
        let biased = with_ctx(
            &m,
            |c| c.war_shield_bias = true,
            |ctx| {
                assert!(ctx.war_vars.contains(v));
                assert!(!ctx.war_vars.contains(a), "disjoint accesses earn no bias");
                (
                    gain_of(ctx, v, counts, bounds),
                    gain_of(ctx, a, counts, bounds),
                )
            },
        );
        assert!(biased.0 > baseline.0, "WAR var gain must grow under bias");
        assert_eq!(biased.1, baseline.1, "disjoint var gain must not change");
    }

    #[test]
    fn ratio_ordering_prefers_small_variables() {
        // Two variables with equal total gain; only one fits. The ratio
        // rule must pick the smaller one.
        let mut mb = ModuleBuilder::new("m");
        let small = mb.var(Variable::scalar("small"));
        let big = mb.var(Variable::array("big", 8));
        let mut f = FunctionBuilder::new("main", 0);
        let a = f.load_scalar(small);
        let _ = f.load_idx(big, 0);
        f.ret(Some(a.into()));
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        with_ctx(
            &m,
            |_| {},
            |ctx| {
                let counts = vec![
                    (
                        small,
                        AccessCount {
                            reads: 10,
                            writes: 0,
                        },
                    ),
                    (
                        big,
                        AccessCount {
                            reads: 10,
                            writes: 0,
                        },
                    ),
                ];
                let bounds = IntervalBounds {
                    resume_into: None,
                    save_edge: None,
                };
                // Capacity fits only the scalar.
                let sel = select_allocation(ctx, &counts, &VarSet::empty(), bounds, 4);
                assert!(sel.vm.contains(small));
                assert!(!sel.vm.contains(big));
            },
        );
    }
}
