//! Program rewriting: block splitting and checkpoint instrumentation.
//!
//! The final SCHEMATIC passes (§IV-A.c) set the memory targeted by each
//! load/store — here realized as the per-block
//! [`schematic_emu::AllocationPlan`] — and insert save/restore
//! operations at the selected checkpoint locations by splitting the
//! chosen CFG edges.

use crate::error::PlacementError;
use schematic_emu::{
    AllocationPlan, CheckpointKind, CheckpointSpec, FailurePolicy, InstrumentedModule,
};
use schematic_energy::{CostTable, Energy, MemClass};
use schematic_ir::{BlockId, Edge, FuncId, Inst, Module, Terminator, VarId, VarSet};

/// A planned checkpoint: edge, save/restore sets and the allocation on
/// the checkpoint's far side.
pub(crate) type PlannedCp = (Edge, Vec<VarId>, Vec<VarId>, VarSet);
/// A planned conditional back-edge checkpoint (with firing period).
pub(crate) type PlannedCondCp = (Edge, u32, Vec<VarId>, Vec<VarId>, VarSet);

/// The committed decisions for one function, extracted from the analysis
/// context before it is dropped.
#[derive(Debug, Clone, Default)]
pub(crate) struct FuncDecisions {
    /// VM set per block.
    pub alloc: Vec<VarSet>,
    /// Plain checkpoints.
    pub enabled: Vec<PlannedCp>,
    /// Conditional back-edge checkpoints.
    pub backedge: Vec<PlannedCondCp>,
}

/// Splits any block whose worst-case (all-NVM) cost exceeds half of
/// `eb`, so that every potential checkpoint interval leaves room for the
/// checkpoint overheads (paper footnote 2: blocks needing more than `EB`
/// are split to fit).
///
/// Returns the number of splits performed.
///
/// # Errors
///
/// [`PlacementError::BudgetTooSmall`] if a single instruction exceeds
/// the chunk budget.
pub fn split_large_blocks(
    module: &mut Module,
    table: &CostTable,
    eb: Energy,
) -> Result<usize, PlacementError> {
    // Leave room for the register-file checkpoint overheads around
    // every interval; split the rest in half so two chunks always fit.
    let overhead = table.checkpoint_commit_cost(0).energy + table.checkpoint_resume_cost(0).energy;
    let usable = eb.saturating_sub(overhead);
    let chunk_budget = Energy::from_pj(usable.as_pj() / 2);
    let mut splits = 0;
    // First, split after every call that is not already last in its
    // block: calls are opaque cost units (their body cannot be divided
    // by the caller), so checkpoint locations must exist between them.
    for fid in 0..module.funcs.len() {
        let fid = FuncId::from_usize(fid);
        loop {
            let mut split_at: Option<(BlockId, usize)> = None;
            'scan: for (bid, block) in module.func(fid).iter_blocks() {
                for (i, inst) in block.insts.iter().enumerate() {
                    if matches!(inst, schematic_ir::Inst::Call { .. }) && i + 1 < block.insts.len()
                    {
                        split_at = Some((bid, i + 1));
                        break 'scan;
                    }
                }
            }
            let Some((bid, at)) = split_at else { break };
            let func = module.func_mut(fid);
            let rest = func.blocks[bid.index()].insts.split_off(at);
            let old_term = func.blocks[bid.index()].term.clone();
            let cont = func.add_block(schematic_ir::Block {
                name: None,
                insts: rest,
                term: old_term,
            });
            func.blocks[bid.index()].term = Terminator::Br(cont);
            splits += 1;
        }
    }
    for fid in 0..module.funcs.len() {
        let fid = FuncId::from_usize(fid);
        loop {
            let mut split_at: Option<(BlockId, usize)> = None;
            'scan: for (bid, block) in module.func(fid).iter_blocks() {
                let mut acc = Energy::ZERO;
                for (i, inst) in block.insts.iter().enumerate() {
                    // Calls are barriers handled by summaries; their body
                    // cost is not chargeable to this block's split.
                    let cost = table.inst_cost(inst, |_| MemClass::Nvm).energy;
                    if cost > chunk_budget {
                        return Err(PlacementError::BudgetTooSmall {
                            func: fid,
                            block: bid,
                            cost,
                            eb,
                        });
                    }
                    if acc + cost > chunk_budget {
                        debug_assert!(i > 0);
                        split_at = Some((bid, i));
                        break 'scan;
                    }
                    acc += cost;
                }
            }
            let Some((bid, at)) = split_at else { break };
            let func = module.func_mut(fid);
            let rest = func.blocks[bid.index()].insts.split_off(at);
            let old_term = func.blocks[bid.index()].term.clone();
            let cont = func.add_block(schematic_ir::Block {
                name: None,
                insts: rest,
                term: old_term,
            });
            func.blocks[bid.index()].term = Terminator::Br(cont);
            splits += 1;
        }
    }
    Ok(splits)
}

/// Applies the decisions to (a clone of) the module, producing the
/// instrumented program the emulator executes.
pub(crate) fn instrument(
    module: &Module,
    decisions: &[FuncDecisions],
    technique: &str,
) -> InstrumentedModule {
    let mut out = module.clone();
    let mut plan = AllocationPlan::all_nvm(module);
    let mut checkpoints: Vec<CheckpointSpec> = Vec::new();

    for (fi, dec) in decisions.iter().enumerate() {
        let fid = FuncId::from_usize(fi);
        for (bi, set) in dec.alloc.iter().enumerate() {
            plan.set(fid, BlockId::from_usize(bi), set.clone());
        }
        for (edge, save, restore, alloc_after) in &dec.enabled {
            let id = schematic_ir::CheckpointId::from_usize(checkpoints.len());
            checkpoints.push(CheckpointSpec {
                save_vars: save.clone(),
                restore_vars: restore.clone(),
                kind: CheckpointKind::Plain,
            });
            let nb = out.func_mut(fid).split_edge(edge.from, edge.to);
            out.func_mut(fid)
                .block_mut(nb)
                .insts
                .push(Inst::Checkpoint { id });
            plan.set(fid, nb, alloc_after.clone());
        }
        for (edge, period, save, restore, alloc_after) in &dec.backedge {
            let id = schematic_ir::CheckpointId::from_usize(checkpoints.len());
            checkpoints.push(CheckpointSpec {
                save_vars: save.clone(),
                restore_vars: restore.clone(),
                kind: CheckpointKind::Plain,
            });
            let nb = out.func_mut(fid).split_edge(edge.from, edge.to);
            out.func_mut(fid)
                .block_mut(nb)
                .insts
                .push(Inst::CondCheckpoint {
                    id,
                    period: *period,
                });
            plan.set(fid, nb, alloc_after.clone());
        }
    }

    let boot_restore: Vec<VarId> = {
        let entry = module.entry_func();
        let entry_block = module.func(entry).entry;
        decisions[entry.index()]
            .alloc
            .get(entry_block.index())
            .map(|set| set.iter().collect())
            .unwrap_or_default()
    };

    InstrumentedModule {
        technique: technique.to_string(),
        module: out,
        checkpoints,
        plan,
        policy: FailurePolicy::WaitRecharge,
        boot_restore,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_ir::{FunctionBuilder, ModuleBuilder, Variable};

    fn fat_block_module(n: usize) -> Module {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        for _ in 0..n {
            let v = f.load_scalar(x);
            f.store_scalar(x, v);
        }
        f.ret(None);
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    #[test]
    fn splits_fat_blocks() {
        let mut m = fat_block_module(200);
        let table = CostTable::msp430fr5969();
        // One load/store pair in NVM ≈ 2.9 kpJ; 200 pairs ≈ 580 kpJ.
        // With eb = 200 kpJ the chunk budget is 100 kpJ, so the block
        // splits into ~6 chunks.
        let splits = split_large_blocks(&mut m, &table, Energy::from_pj(200_000)).unwrap();
        assert!(splits >= 4, "splits = {splits}");
        assert!(schematic_ir::verify_module(&m).is_empty());
        // Semantics preserved.
        let im = schematic_emu::InstrumentedModule::bare(m);
        let out = schematic_emu::run(&im, schematic_emu::RunConfig::default()).unwrap();
        assert!(out.completed());
    }

    #[test]
    fn small_blocks_untouched() {
        let mut m = fat_block_module(3);
        let before = m.funcs[0].blocks.len();
        let splits =
            split_large_blocks(&mut m, &CostTable::msp430fr5969(), Energy::from_uj(100)).unwrap();
        assert_eq!(splits, 0);
        assert_eq!(m.funcs[0].blocks.len(), before);
    }

    #[test]
    fn impossible_single_instruction_errors() {
        let mut m = fat_block_module(1);
        let err = split_large_blocks(&mut m, &CostTable::msp430fr5969(), Energy::from_pj(10))
            .unwrap_err();
        assert!(matches!(err, PlacementError::BudgetTooSmall { .. }));
    }

    #[test]
    fn instrument_inserts_checkpoints_and_plan() {
        let m = fat_block_module(3);
        let x = m.var_by_name("x").unwrap();
        let mut set = VarSet::empty();
        set.insert(x);
        // Fake decisions: x in VM in block 0; no checkpoints.
        let dec = vec![FuncDecisions {
            alloc: vec![set.clone()],
            enabled: vec![],
            backedge: vec![],
        }];
        let im = instrument(&m, &dec, "Schematic");
        assert_eq!(im.policy, FailurePolicy::WaitRecharge);
        assert_eq!(im.boot_restore, vec![x]);
        assert!(im.checkpoints.is_empty());
        assert!(im.plan.get(FuncId(0), BlockId(0)).contains(x));
        let out = schematic_emu::run(&im, schematic_emu::RunConfig::default()).unwrap();
        assert!(out.completed());
    }

    #[test]
    fn instrument_splits_edges_for_checkpoints() {
        // Two blocks A -> B with a checkpoint on the edge.
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        let b1 = f.new_block("b1");
        f.store_scalar(x, 7);
        f.br(b1);
        f.switch_to(b1);
        let v = f.load_scalar(x);
        f.ret(Some(v.into()));
        let main = mb.func(f.finish());
        let m = mb.finish(main);

        let mut set = VarSet::empty();
        set.insert(x);
        let dec = vec![FuncDecisions {
            alloc: vec![set.clone(), set.clone()],
            enabled: vec![(
                Edge::new(BlockId(0), BlockId(1)),
                vec![x],
                vec![x],
                set.clone(),
            )],
            backedge: vec![],
        }];
        let im = instrument(&m, &dec, "Schematic");
        assert_eq!(im.checkpoints.len(), 1);
        assert_eq!(im.module.funcs[0].blocks.len(), 3);
        let out = schematic_emu::run(&im, schematic_emu::RunConfig::default()).unwrap();
        assert!(out.completed());
        assert_eq!(out.result, Some(7));
        assert_eq!(out.metrics.checkpoints_committed, 1);
        assert_eq!(out.metrics.sleep_events, 1); // wait-mode
    }
}
