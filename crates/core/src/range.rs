//! Strided-interval abstract domain over registers, and the partitioned
//! per-variable access footprints built on top of it.
//!
//! This is the symbolic index analysis behind the index-sensitive WAR
//! lattice in [`crate::anomaly`]. The paper's anomaly check treats every
//! array as one abstract cell; here each register is abstracted to a
//! *strided interval* `{lo..hi : +stride}` — the set of values
//! `{lo, lo+stride, ..., hi}` — so constant indices, affine induction
//! variables (`i = i + c` around a loop back edge), and scaled copies
//! (`2*i`, `i << 1`) keep enough shape for the anomaly pass to prove two
//! array footprints disjoint.
//!
//! The analysis is a forward dataflow fixpoint per function:
//!
//! * entry state: parameter registers are unknown ([`Range::Top`]), all
//!   other registers start as the constant `0` (the emulator
//!   zero-initializes the register file);
//! * transfer: `Copy`/`Select` propagate, `Add`/`Sub`/`Mul`/`Shl` are
//!   evaluated with overflow checks — a result that may wrap at 32 bits
//!   keeps only the residue modulo the largest power of two dividing
//!   its stride (`2^k` divides `2^32`, so that residue survives the
//!   wrap), degrading to the full-width interval in that congruence
//!   class — `Cmp` yields `{0..1}`, every other def goes to `Top`;
//! * merge: pointwise [`Range::join`]; after [`WIDEN_AFTER`] visits of
//!   the same block the join is *widened* — a bound that is still
//!   growing is blown out to the `i32` limit **along the current
//!   stride**, so the loop `i += 2` stabilizes at `{0..2^31-2 : +2}`
//!   and parity facts survive widening.
//!
//! After the fixpoint a final walk records the abstract index of every
//! `Load`/`Store` site into an [`IndexRanges`] table the anomaly pass
//! queries. [`Footprint`] then clamps an index range to a variable's
//! word count — sound because an out-of-bounds index traps and aborts
//! the run before the access happens — giving a bounded strided set of
//! word offsets per access.

use std::collections::VecDeque;
use std::fmt;

use schematic_ir::{BlockId, Cfg, Function, Inst, Operand, Reg};

/// Number of times a block is re-joined before merges start widening.
pub const WIDEN_AFTER: u32 = 3;

/// A strided interval `{lo, lo+stride, ..., hi}` over `i64` (values are
/// `i32` program values; the `i64` carrier avoids overflow in the
/// arithmetic on bounds).
///
/// Invariants for `Si`: `lo <= hi`; `stride == 0` iff `lo == hi`
/// (singleton); otherwise `(hi - lo) % stride == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Range {
    /// Unreachable / no value.
    Bot,
    /// The strided interval `{lo, lo + stride, ..., hi}`.
    Si {
        /// Smallest value.
        lo: i64,
        /// Largest value.
        hi: i64,
        /// Distance between consecutive values; `0` for a singleton.
        stride: u64,
    },
    /// Any `i32` value.
    Top,
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

const I32_MIN: i64 = i32::MIN as i64;
const I32_MAX: i64 = i32::MAX as i64;

impl Range {
    /// The singleton range `{c}`.
    pub fn constant(c: i32) -> Range {
        Range::Si {
            lo: c as i64,
            hi: c as i64,
            stride: 0,
        }
    }

    fn si(lo: i64, hi: i64, stride: u64) -> Range {
        debug_assert!(lo <= hi);
        if lo == hi {
            Range::Si { lo, hi, stride: 0 }
        } else {
            debug_assert!(stride > 0 && ((hi - lo) as u64).is_multiple_of(stride));
            Range::Si { lo, hi, stride }
        }
    }

    /// Constructor for arithmetic results, which may wrap. In-range
    /// bounds are exact. A wrapped singleton is folded to the wrapped
    /// constant. Otherwise the residue modulo the largest power of two
    /// dividing the stride survives 32-bit wrapping (`2^k` divides
    /// `2^32`), so the result is the full-width interval in that
    /// congruence class — this is what keeps parity facts alive for
    /// widened induction variables like `i += 2`.
    fn si_checked(lo: i64, hi: i64, stride: u64) -> Range {
        if lo >= I32_MIN && hi <= I32_MAX {
            return Range::si(lo, hi, stride);
        }
        if lo == hi {
            return Range::constant(lo as u32 as i32);
        }
        let s2 = stride & stride.wrapping_neg();
        if s2 > 1 << 31 {
            return Range::Top;
        }
        // For s2 == 1 (including odd strides) this is the full-width
        // stride-1 interval — semantically Top, but keeping the `Si`
        // shape lets derived values (e.g. `2 * i`) still extract a
        // stride from it.
        let s = s2.max(1) as i64;
        let wlo = I32_MIN + (lo - I32_MIN).rem_euclid(s);
        let whi = wlo + ((I32_MAX - wlo) / s) * s;
        Range::si(wlo, whi, s2)
    }

    /// Least upper bound of two ranges.
    pub fn join(self, other: Range) -> Range {
        match (self, other) {
            (Range::Bot, r) | (r, Range::Bot) => r,
            (Range::Top, _) | (_, Range::Top) => Range::Top,
            (
                Range::Si {
                    lo: a,
                    hi: b,
                    stride: s1,
                },
                Range::Si {
                    lo: c,
                    hi: d,
                    stride: s2,
                },
            ) => {
                let stride = gcd(gcd(s1, s2), a.abs_diff(c));
                Range::si(a.min(c), b.max(d), stride)
            }
        }
    }

    /// Widening: like [`Range::join`], but any bound that is still
    /// moving is pushed to the farthest `i32` value reachable along the
    /// joined stride, so ascending chains terminate while stride
    /// (parity) facts survive.
    pub fn widen(self, other: Range) -> Range {
        let joined = self.join(other);
        let (
            Range::Si { lo, hi, .. },
            Range::Si {
                lo: jlo,
                hi: jhi,
                stride,
            },
        ) = (self, joined)
        else {
            return joined;
        };
        let s = stride.max(1) as i64;
        let wlo = if jlo < lo {
            // Largest value <= jlo reachable from jlo going down in
            // steps of `s` without leaving i32.
            jlo - ((jlo - I32_MIN) / s) * s
        } else {
            jlo
        };
        let whi = if jhi > hi {
            jhi + ((I32_MAX - jhi) / s) * s
        } else {
            jhi
        };
        Range::si(wlo, whi, if wlo == whi { 0 } else { stride.max(1) })
    }

    /// Abstract wrapping addition.
    // Deliberately not `std::ops::Add`: these are abstract transfer
    // functions taking the domain by value, kept as plain methods so
    // the transfer match in `index_ranges` reads uniformly.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Range) -> Range {
        match (self, other) {
            (Range::Bot, _) | (_, Range::Bot) => Range::Bot,
            (
                Range::Si {
                    lo: a,
                    hi: b,
                    stride: s1,
                },
                Range::Si {
                    lo: c,
                    hi: d,
                    stride: s2,
                },
            ) => Range::si_checked(a + c, b + d, gcd(s1, s2)),
            _ => Range::Top,
        }
    }

    /// Abstract wrapping subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Range) -> Range {
        match (self, other) {
            (Range::Bot, _) | (_, Range::Bot) => Range::Bot,
            (
                Range::Si {
                    lo: a,
                    hi: b,
                    stride: s1,
                },
                Range::Si {
                    lo: c,
                    hi: d,
                    stride: s2,
                },
            ) => Range::si_checked(a - d, b - c, gcd(s1, s2)),
            _ => Range::Top,
        }
    }

    /// Abstract wrapping multiplication. Precise only when one side is
    /// a known constant (the common `scale * i` indexing shape);
    /// anything else is `Top`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Range) -> Range {
        match (self, other) {
            (Range::Bot, _) | (_, Range::Bot) => Range::Bot,
            (Range::Si { lo: k, hi, .. }, r) | (r, Range::Si { lo: k, hi, .. }) if k == hi => {
                r.mul_const(k)
            }
            _ => Range::Top,
        }
    }

    fn mul_const(self, k: i64) -> Range {
        if k == 0 {
            return Range::constant(0);
        }
        match self {
            Range::Bot => Range::Bot,
            Range::Top => Range::Top,
            Range::Si { lo, hi, stride } => {
                let (a, b) = (lo * k, hi * k);
                Range::si_checked(a.min(b), a.max(b), stride * k.unsigned_abs())
            }
        }
    }

    /// Abstract logical shift left — a multiply by `2^k` when the shift
    /// amount is a known in-range constant.
    #[allow(clippy::should_implement_trait)]
    pub fn shl(self, other: Range) -> Range {
        match other {
            Range::Si { lo: k, hi, .. } if k == hi && (0..32).contains(&k) => {
                self.mul_const(1i64 << k)
            }
            _ => Range::Top,
        }
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Range::Bot => write!(f, "⊥"),
            Range::Top => write!(f, "⊤"),
            Range::Si { lo, hi, .. } if lo == hi => write!(f, "{{{lo}}}"),
            Range::Si { lo, hi, stride } => write!(f, "{{{lo}..{hi}:+{stride}}}"),
        }
    }
}

/// A bounded strided set of word offsets `{lo, lo+stride, ..., hi}`
/// within one variable, `0 <= lo <= hi < words`.
///
/// `stride == 0` iff `lo == hi` (a single word).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// First word offset.
    pub lo: u32,
    /// Last word offset (inclusive).
    pub hi: u32,
    /// Distance between consecutive offsets; `0` for a single word.
    pub stride: u32,
}

impl Span {
    fn contains(&self, e: u32) -> bool {
        self.lo <= e && e <= self.hi && (e - self.lo).is_multiple_of(self.stride.max(1))
    }
}

/// The set of word offsets of one variable that an access (or a union
/// of accesses) may touch: empty, or a single [`Span`].
///
/// Unions are over-approximated by the strided hull of the operands
/// (smallest `lo`, largest `hi`, gcd of strides and phase offsets), so
/// the representation is canonical, unions only grow, and dataflow
/// merges terminate. [`Footprint::intersects`] answers "may these two
/// sets share a word?" — `false` is a *proof* of disjointness, `true`
/// may be conservative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Footprint(Option<Span>);

/// Cap on the exact element walk in [`Footprint::intersects`]; larger
/// windows conservatively report an intersection.
const INTERSECT_SCAN_CAP: u32 = 4096;

impl Footprint {
    /// The empty footprint (no words touched).
    pub fn empty() -> Footprint {
        Footprint(None)
    }

    /// Every word of a variable with `words` words.
    pub fn whole(words: usize) -> Footprint {
        if words == 0 {
            return Footprint(None);
        }
        let hi = (words - 1).min(u32::MAX as usize) as u32;
        Footprint(Some(Span {
            lo: 0,
            hi,
            stride: u32::from(hi != 0),
        }))
    }

    /// The single word offset `e`.
    pub fn elem(e: u32) -> Footprint {
        Footprint(Some(Span {
            lo: e,
            hi: e,
            stride: 0,
        }))
    }

    /// The word offsets an access with abstract index `r` may touch in
    /// a variable of `words` words. Indexes outside `[0, words)` trap
    /// before the access happens, so clamping to the valid window is
    /// sound.
    pub fn of_range(r: Range, words: usize) -> Footprint {
        if words == 0 {
            return Footprint(None);
        }
        let max = (words - 1) as i64;
        match r {
            Range::Bot => Footprint(None),
            Range::Top => Footprint::whole(words),
            Range::Si { lo, hi, stride } => {
                if hi < 0 || lo > max {
                    return Footprint(None);
                }
                let s = stride.min(u32::MAX as u64).max(1) as i64;
                // Snap the clamped bounds inward onto the stride grid
                // anchored at `lo`.
                let clo = if lo < 0 {
                    lo + ((-lo + s - 1) / s) * s
                } else {
                    lo
                };
                let chi = if hi > max {
                    hi - ((hi - max + s - 1) / s) * s
                } else {
                    hi
                };
                if clo > chi {
                    return Footprint(None);
                }
                Footprint(Some(Span {
                    lo: clo as u32,
                    hi: chi as u32,
                    stride: if clo == chi { 0 } else { stride as u32 },
                }))
            }
        }
    }

    /// True when no words are touched.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// True when word offset `e` may be touched.
    pub fn contains(&self, e: u32) -> bool {
        self.0.as_ref().is_some_and(|s| s.contains(e))
    }

    /// Grow this footprint to cover `other` (strided hull). Returns
    /// `true` when the footprint changed.
    pub fn union_with(&mut self, other: &Footprint) -> bool {
        let merged = match (self.0, other.0) {
            (None, o) => Footprint(o),
            (s, None) => Footprint(s),
            (Some(a), Some(b)) => {
                let stride = gcd(
                    gcd(a.stride as u64, b.stride as u64),
                    a.lo.abs_diff(b.lo) as u64,
                ) as u32;
                let lo = a.lo.min(b.lo);
                let hi = a.hi.max(b.hi);
                Footprint(Some(Span {
                    lo,
                    hi,
                    stride: if lo == hi { 0 } else { stride.max(1) },
                }))
            }
        };
        let changed = merged != *self;
        *self = merged;
        changed
    }

    /// May this footprint share a word with `other`? `false` is a proof
    /// of disjointness. Exact (walks the sparser span's elements inside
    /// the overlap window) up to [`INTERSECT_SCAN_CAP`] steps, then
    /// conservatively `true`.
    pub fn intersects(&self, other: &Footprint) -> bool {
        let (Some(a), Some(b)) = (self.0, other.0) else {
            return false;
        };
        let lo = a.lo.max(b.lo);
        let hi = a.hi.min(b.hi);
        if lo > hi {
            return false;
        }
        // Phase compatibility: x ≡ a.lo (mod a.stride) and
        // x ≡ b.lo (mod b.stride) has a solution only if the phases
        // agree modulo gcd of the strides.
        let g = gcd(a.stride.max(1) as u64, b.stride.max(1) as u64);
        if !(a.lo.abs_diff(b.lo) as u64).is_multiple_of(g) {
            return false;
        }
        // Walk the coarser span's elements inside the window.
        let (walk, probe) = if a.stride >= b.stride { (a, b) } else { (b, a) };
        let s = walk.stride.max(1);
        let first = walk.lo + (lo - walk.lo).div_ceil(s) * s;
        let mut x = first;
        let mut steps = 0u32;
        while x <= hi {
            if probe.contains(x) {
                return true;
            }
            if steps >= INTERSECT_SCAN_CAP {
                return true; // give up: assume they may intersect
            }
            steps += 1;
            x += s;
        }
        false
    }
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            None => write!(f, "∅"),
            Some(Span { lo, hi, .. }) if lo == hi => write!(f, "[{lo}]"),
            Some(Span { lo, hi, stride: 1 }) => write!(f, "[{lo}..{hi}]"),
            Some(Span { lo, hi, stride }) => write!(f, "[{lo}..{hi}:+{stride}]"),
        }
    }
}

/// Per-function table of the abstract index of every `Load`/`Store`
/// site, produced by [`index_ranges`].
#[derive(Debug, Clone, Default)]
pub struct IndexRanges {
    at: std::collections::BTreeMap<(BlockId, usize), Range>,
}

impl IndexRanges {
    /// Abstract value of the index operand of the `Load`/`Store` at
    /// instruction `i` of block `b`. `Top` for unrecorded sites.
    pub fn idx_range(&self, b: BlockId, i: usize) -> Range {
        self.at.get(&(b, i)).copied().unwrap_or(Range::Top)
    }
}

type RegState = Vec<Range>;

fn eval(state: &RegState, op: Operand) -> Range {
    match op {
        Operand::Imm(c) => Range::constant(c),
        Operand::Reg(r) => state.get(r.index()).copied().unwrap_or(Range::Top),
    }
}

fn set(state: &mut RegState, r: Reg, v: Range) {
    if let Some(slot) = state.get_mut(r.index()) {
        *slot = v;
    }
}

fn transfer(state: &mut RegState, inst: &Inst) {
    use schematic_ir::BinOp;
    match inst {
        Inst::Copy { dst, src } => {
            let v = eval(state, *src);
            set(state, *dst, v);
        }
        Inst::Bin { dst, op, lhs, rhs } => {
            let (a, b) = (eval(state, *lhs), eval(state, *rhs));
            let v = match op {
                BinOp::Add => a.add(b),
                BinOp::Sub => a.sub(b),
                BinOp::Mul => a.mul(b),
                BinOp::Shl => a.shl(b),
                _ => Range::Top,
            };
            set(state, *dst, v);
        }
        Inst::Select {
            dst,
            then_val,
            else_val,
            ..
        } => {
            let v = eval(state, *then_val).join(eval(state, *else_val));
            set(state, *dst, v);
        }
        Inst::Cmp { dst, .. } => set(state, *dst, Range::si(0, 1, 1)),
        Inst::Un { dst, .. } | Inst::Load { dst, .. } => set(state, *dst, Range::Top),
        Inst::Call { dst, .. } => {
            if let Some(d) = dst {
                set(state, *d, Range::Top);
            }
        }
        Inst::Store { .. }
        | Inst::Checkpoint { .. }
        | Inst::CondCheckpoint { .. }
        | Inst::SaveVar { .. }
        | Inst::RestoreVar { .. } => {}
    }
}

/// Run the strided-interval fixpoint over `func` and record the
/// abstract index of every `Load`/`Store` site.
///
/// Loop induction variables need no special detection: registers are
/// mutable (the IR is not SSA), so `i = i + 1` around a back edge
/// reaches the loop header's merge, and widening caps the resulting
/// ascending chain while preserving the stride.
pub fn index_ranges(func: &Function) -> IndexRanges {
    let cfg = Cfg::new(func);
    let n_blocks = func.blocks.len();

    // Entry register state: parameters are caller-controlled (Top),
    // everything else starts as the zero-initialized constant 0.
    let mut entry = vec![Range::constant(0); func.n_regs];
    for slot in entry.iter_mut().take(func.n_params) {
        *slot = Range::Top;
    }

    let mut in_states: Vec<Option<RegState>> = vec![None; n_blocks];
    in_states[func.entry.index()] = Some(entry);
    let mut visits = vec![0u32; n_blocks];

    let order = cfg.reverse_postorder();
    let mut queued = vec![false; n_blocks];
    let mut worklist: VecDeque<BlockId> = VecDeque::new();
    for &b in &order {
        worklist.push_back(b);
        queued[b.index()] = true;
    }

    while let Some(b) = worklist.pop_front() {
        queued[b.index()] = false;
        let Some(mut state) = in_states[b.index()].clone() else {
            continue;
        };
        visits[b.index()] = visits[b.index()].saturating_add(1);
        let block = func.block(b);
        for inst in &block.insts {
            transfer(&mut state, inst);
        }
        for succ in block.term.successors() {
            let changed = match &mut in_states[succ.index()] {
                slot @ None => {
                    *slot = Some(state.clone());
                    true
                }
                Some(prev) => {
                    let widen = visits[succ.index()] >= WIDEN_AFTER;
                    let mut any = false;
                    for (p, n) in prev.iter_mut().zip(&state) {
                        let merged = if widen { p.widen(*n) } else { p.join(*n) };
                        if merged != *p {
                            *p = merged;
                            any = true;
                        }
                    }
                    any
                }
            };
            if changed && !queued[succ.index()] {
                queued[succ.index()] = true;
                worklist.push_back(succ);
            }
        }
    }

    // Final walk: record the abstract index of each memory access.
    let mut out = IndexRanges::default();
    for (b, block) in func.iter_blocks() {
        let Some(st) = &in_states[b.index()] else {
            continue;
        };
        let mut state = st.clone();
        for (i, inst) in block.insts.iter().enumerate() {
            match inst {
                Inst::Load { idx: Some(op), .. } | Inst::Store { idx: Some(op), .. } => {
                    out.at.insert((b, i), eval(&state, *op));
                }
                _ => {}
            }
            transfer(&mut state, inst);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_ir::{BinOp, CmpOp, FunctionBuilder, VarId};

    #[test]
    fn join_of_constants_forms_stride() {
        let r = Range::constant(0).join(Range::constant(6));
        assert_eq!(
            r,
            Range::Si {
                lo: 0,
                hi: 6,
                stride: 6
            }
        );
        let r = r.join(Range::constant(3));
        assert_eq!(
            r,
            Range::Si {
                lo: 0,
                hi: 6,
                stride: 3
            }
        );
    }

    #[test]
    fn widen_preserves_stride() {
        let a = Range::Si {
            lo: 0,
            hi: 2,
            stride: 2,
        };
        let b = Range::Si {
            lo: 0,
            hi: 4,
            stride: 2,
        };
        let w = a.widen(b);
        let Range::Si { lo, hi, stride } = w else {
            panic!("widened to {w}");
        };
        assert_eq!(lo, 0);
        assert_eq!(stride, 2);
        assert!(hi >= i32::MAX as i64 - 1);
        assert_eq!((hi - lo) % 2, 0);
        // Already-stable bounds do not widen further.
        assert_eq!(w.widen(w), w);
    }

    #[test]
    fn arithmetic_wrap_is_modeled() {
        // Wrapped singletons fold to the exact wrapped constant.
        let big = Range::constant(i32::MAX);
        assert_eq!(big.add(Range::constant(1)), Range::constant(i32::MIN));
        assert_eq!(
            Range::constant(1 << 20).mul(Range::constant(1 << 20)),
            Range::constant(0)
        );
        // Out-of-range shift amounts lose everything.
        assert_eq!(Range::constant(3).shl(Range::constant(40)), Range::Top);
        // A wrapped even-strided interval keeps its parity: residues
        // mod 2^k survive 32-bit wraparound.
        let evens = Range::Si {
            lo: 0,
            hi: I32_MAX - 1,
            stride: 2,
        };
        let bumped = evens.add(Range::constant(2));
        let Range::Si { lo, stride, .. } = bumped else {
            panic!("expected interval, got {bumped}");
        };
        assert_eq!(stride, 2);
        assert_eq!(lo.rem_euclid(2), 0);
        // An odd stride has no wrap-stable power-of-two part: the wrap
        // degrades to the full-width stride-1 interval (all of i32).
        let odds = Range::Si {
            lo: 0,
            hi: I32_MAX - 1,
            stride: 3,
        };
        assert_eq!(
            odds.add(Range::constant(3)),
            Range::Si {
                lo: I32_MIN,
                hi: I32_MAX,
                stride: 1
            }
        );
    }

    #[test]
    fn footprint_disjointness() {
        // Even vs odd elements of the same window.
        let evens = Footprint::of_range(
            Range::Si {
                lo: 0,
                hi: 254,
                stride: 2,
            },
            256,
        );
        let odds = Footprint::of_range(
            Range::Si {
                lo: 1,
                hi: 255,
                stride: 2,
            },
            256,
        );
        assert!(!evens.intersects(&odds));
        assert!(evens.intersects(&evens));
        // Distinct constants are disjoint; hull of {0,6} misses 3.
        let mut acc = Footprint::elem(0);
        acc.union_with(&Footprint::elem(6));
        assert!(!acc.intersects(&Footprint::elem(3)));
        assert!(acc.intersects(&Footprint::elem(6)));
        // Whole-variable footprints hit everything in range.
        assert!(Footprint::whole(4).intersects(&Footprint::elem(3)));
        assert!(!Footprint::whole(4).intersects(&Footprint::empty()));
    }

    #[test]
    fn of_range_clamps_to_words() {
        // Widened induction variable clamps to the array window.
        let f = Footprint::of_range(
            Range::Si {
                lo: 0,
                hi: i32::MAX as i64 - 1,
                stride: 2,
            },
            10,
        );
        assert_eq!(f.to_string(), "[0..8:+2]");
        assert!(Footprint::of_range(Range::constant(-5), 10).is_empty());
        assert!(Footprint::of_range(Range::constant(12), 10).is_empty());
        assert_eq!(Footprint::of_range(Range::Top, 4), Footprint::whole(4));
    }

    #[test]
    fn loop_induction_variable_keeps_stride() {
        // i starts at 0, i += 2 each trip: header sees {0..MAX:+2}.
        let mut fb = FunctionBuilder::new("f", 0);
        let i = fb.copy(0);
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let c = fb.cmp(CmpOp::SLt, i, 100);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let _v = fb.load_idx(VarId(0), i);
        let i2 = fb.bin(BinOp::Add, i, 2);
        fb.copy_to(i, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();

        let ranges = index_ranges(&f);
        // The load is inst 0 of `body`. Widening (and the wrap rule)
        // may blow the bounds wide open, but the stride must survive,
        // and clamping to a 10-word array keeps only the even words.
        let r = ranges.idx_range(body, 0);
        let Range::Si { lo, stride, .. } = r else {
            panic!("expected interval, got {r}");
        };
        assert_eq!(stride, 2);
        assert_eq!(lo.rem_euclid(2), 0);
        assert_eq!(Footprint::of_range(r, 10).to_string(), "[0..8:+2]");
    }
}
