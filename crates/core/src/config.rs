//! Configuration of the SCHEMATIC analysis.

use schematic_energy::Energy;

/// Tunables for one compilation (§II-B inputs plus engineering caps).
#[derive(Debug, Clone, PartialEq)]
pub struct SchematicConfig {
    /// Usable capacitor energy `EB`: every inter-checkpoint interval's
    /// worst-case energy (restore + execute + save) must fit in it.
    pub eb: Energy,
    /// Volatile-memory capacity `SVM` in bytes (MSP430FR5969: 2048).
    pub svm_bytes: usize,
    /// Number of profiling runs used to rank paths by frequency
    /// (§III-A.3; the paper uses 1000 runs with random inputs).
    pub profile_runs: usize,
    /// Apply the liveness optimization of Eq. 2 (skip saving dead
    /// variables / restoring write-first scalars). Disable for the
    /// ablation bench.
    pub liveness_opt: bool,
    /// Order VM candidates by gain/size ratio (§III-A.2). When `false`,
    /// candidates are ordered by raw gain — the naive ordering the
    /// ratio rule improves upon (ablation).
    pub ratio_ordering: bool,
    /// Cap on structurally enumerated coverage paths per region.
    pub max_structural_paths: usize,
    /// Bias the gain function toward keeping *potential WAR* variables
    /// in VM: variables the index-sensitive anomaly analysis
    /// ([`crate::anomaly::potential_war_vars`]) says could form a WAR
    /// under an all-NVM allocation earn an extra write-gain bonus, while
    /// variables whose accesses are index-proven disjoint (downgraded
    /// regions) earn nothing — their shielding is free to skip. Off by
    /// default (paper-faithful Eq. 1).
    pub war_shield_bias: bool,
}

impl SchematicConfig {
    /// Defaults matching the paper's experimental setup for a given
    /// energy budget: 2 KB VM, liveness and ratio ordering on.
    pub fn new(eb: Energy) -> Self {
        SchematicConfig {
            eb,
            svm_bytes: 2048,
            profile_runs: 16,
            liveness_opt: true,
            ratio_ordering: true,
            max_structural_paths: 256,
            war_shield_bias: false,
        }
    }

    /// The All-NVM ablation of §IV-E: no VM allocation at all (placement
    /// still runs).
    pub fn all_nvm(mut self) -> Self {
        self.svm_bytes = 0;
        self
    }

    /// Feeds every field that can change a compilation's output into a
    /// stable hasher, for content-addressed caching of compiled
    /// programs: the energy budget, VM capacity, profiling depth and
    /// both ablation toggles.
    pub fn identity_into(&self, h: &mut schematic_ir::hash::StableHasher) {
        h.write_u64(self.eb.0);
        h.write_usize(self.svm_bytes);
        h.write_usize(self.profile_runs);
        h.write_bool(self.liveness_opt);
        h.write_bool(self.ratio_ordering);
        h.write_usize(self.max_structural_paths);
        h.write_bool(self.war_shield_bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_platform() {
        let c = SchematicConfig::new(Energy::from_uj(4));
        assert_eq!(c.svm_bytes, 2048);
        assert!(c.liveness_opt);
        assert!(c.ratio_ordering);
    }

    #[test]
    fn all_nvm_zeroes_vm() {
        let c = SchematicConfig::new(Energy::from_uj(4)).all_nvm();
        assert_eq!(c.svm_bytes, 0);
    }
}
