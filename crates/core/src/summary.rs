//! Function and loop summaries.
//!
//! SCHEMATIC analyzes callees before callers (§III-B.1) and inner loops
//! before outer ones (§III-B.2). Once analyzed, a callee or loop is
//! *final* and is represented to its surroundings by a summary:
//!
//! * with **no checkpoint** inside, it behaves like one opaque basic
//!   block: a fixed worst-case energy, a fixed variable allocation, and
//!   aggregate access counts that fold into the caller's gain function;
//! * with **checkpoints** inside, it is a *barrier*: the surrounding
//!   interval must deliver it with at least `entry_energy` of budget
//!   left, and execution resumes after it having already consumed
//!   `exit_energy` of the fresh budget.

use schematic_energy::Energy;
use schematic_ir::{AccessCount, VarId, VarSet};
use std::collections::HashMap;

/// Summary of an analyzed function, seen from its callers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FuncSummary {
    /// Whether any checkpoint (plain or conditional) exists inside the
    /// function or its transitive callees.
    pub has_checkpoint: bool,
    /// Worst-case energy from entry to the first checkpoint (whole body
    /// if checkpoint-free).
    pub entry_energy: Energy,
    /// Worst-case energy from the last checkpoint to any exit (whole
    /// body if checkpoint-free).
    pub exit_energy: Energy,
    /// Variables the function's own allocation keeps in VM (union over
    /// its blocks). Imposed on callers.
    pub vm_vars: VarSet,
    /// Peak VM bytes the function needs while running (its own blocks
    /// and transitive callees).
    pub vm_bytes: usize,
    /// Aggregate access counts with loop trip scaling, for folding into
    /// caller gain computations (checkpoint-free callees only).
    pub access: HashMap<VarId, AccessCount>,
}

/// Summary of an analyzed loop, seen from the enclosing region.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoopSummary {
    /// Whether any checkpoint exists inside the loop (including its
    /// conditional back-edge checkpoint and checkpointed callees).
    pub has_checkpoint: bool,
    /// Worst-case energy from the loop header to the first checkpoint
    /// encountered (bounded by the conditional-checkpoint period).
    pub entry_energy: Energy,
    /// Worst-case energy from the last checkpoint inside the loop to
    /// leaving the loop.
    pub exit_energy: Energy,
    /// Full worst-case energy of the loop (all trips); meaningful when
    /// checkpoint-free.
    pub total: Energy,
    /// The single body allocation (checkpoint-free loops; loops with
    /// internal checkpoints keep per-block allocations instead).
    pub alloc: VarSet,
    /// Peak VM bytes while the loop runs.
    pub vm_bytes: usize,
    /// Access counts of one pass over the whole loop (trip-scaled).
    pub access: HashMap<VarId, AccessCount>,
    /// Annotated maximum trip count.
    pub max_iters: u64,
    /// Conditional back-edge checkpoint period, if one was placed
    /// (Algorithm 1).
    pub backedge_period: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_empty() {
        let f = FuncSummary::default();
        assert!(!f.has_checkpoint);
        assert_eq!(f.entry_energy, Energy::ZERO);
        assert!(f.vm_vars.is_empty());
        let l = LoopSummary::default();
        assert_eq!(l.backedge_period, None);
        assert_eq!(l.max_iters, 0);
    }
}
