//! End-to-end SCHEMATIC compilation.
//!
//! Mirrors the pass structure of §IV-A.c: gather access information,
//! run the joint placement/allocation analysis per function (callees
//! first), then rewrite the program — set every load/store's memory
//! target via the allocation plan and insert save/restore operations at
//! the selected checkpoint locations. A final independent verification
//! pass re-checks the forward-progress guarantee and repairs any stretch
//! the greedy path analysis missed.

use crate::analyze::{analyze_function, summarize_function};
use crate::config::SchematicConfig;
use crate::ctx::FuncCtx;
use crate::error::{EdgeDecision, PlacementError};
use crate::profile::Profile;
use crate::pverify::{patch_placement, verify_placement, PlacementReport};
use crate::summary::FuncSummary;
use crate::transform::{instrument, split_large_blocks, FuncDecisions};
use schematic_emu::InstrumentedModule;
use schematic_energy::CostTable;
use schematic_ir::{call_effects, CallGraph, Module, VarSet};

/// Output of [`compile`].
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The instrumented program, ready for the intermittent emulator.
    pub instrumented: InstrumentedModule,
    /// Final verification report (always sound on success).
    pub report: PlacementReport,
    /// Per-function summaries (diagnostics).
    pub summaries: Vec<FuncSummary>,
    /// Blocks split by the pre-pass.
    pub splits: usize,
    /// Checkpoints added by the verifier-driven repair pass (0 when the
    /// path analysis alone was sound, which is the common case).
    pub repairs: usize,
}

/// Compiles `module` with SCHEMATIC, collecting a fresh execution
/// profile internally.
///
/// # Errors
///
/// See [`PlacementError`]; the most common failure is a budget too
/// small for even a single instruction plus checkpoint overheads.
pub fn compile(
    module: &Module,
    table: &CostTable,
    config: &SchematicConfig,
) -> Result<Compiled, PlacementError> {
    compile_with_profile(module, table, config, None)
}

/// Like [`compile`] but reusing pre-collected profile traces.
///
/// The profile must have been collected on `module` as-is; if the block
///-splitting pre-pass changes the CFG, a fresh profile is collected
/// internally instead.
///
/// # Errors
///
/// See [`PlacementError`].
pub fn compile_with_profile(
    module: &Module,
    table: &CostTable,
    config: &SchematicConfig,
    profile: Option<&Profile>,
) -> Result<Compiled, PlacementError> {
    if let Some(err) = schematic_ir::verify_module(module).into_iter().next() {
        return Err(PlacementError::InvalidModule {
            message: err.to_string(),
        });
    }

    // Pre-pass: split blocks too large for the budget (footnote 2).
    let mut m = module.clone();
    let splits = {
        let _span = schematic_obs::span("compile/split");
        split_large_blocks(&mut m, table, config.eb)?
    };

    let own_profile;
    let profile = match (profile, splits) {
        (Some(p), 0) => p,
        _ => {
            let _span = schematic_obs::span("compile/profile");
            own_profile = Profile::collect(&m, table, config.profile_runs);
            &own_profile
        }
    };

    let effects = call_effects(&m);
    let cg = CallGraph::new(&m);
    let order = cg
        .bottom_up_order(&m)
        .map_err(|e| PlacementError::Recursive { func: e.func })?;

    let mut summaries = vec![FuncSummary::default(); m.funcs.len()];
    let mut decisions: Vec<FuncDecisions> = vec![FuncDecisions::default(); m.funcs.len()];

    let analyze_span = schematic_obs::span("compile/analyze");
    for fid in order {
        let snapshot = summaries.clone();
        // Callees keep 1/8 of the budget in reserve so the caller can
        // afford its own restore and pre/post-call work around the
        // callee's boundary segments (§III-B.1).
        let fn_config = if m.entry == Some(fid) {
            config.clone()
        } else {
            let mut c = config.clone();
            let headroom =
                table.checkpoint_resume_cost(0).energy + table.checkpoint_commit_cost(0).energy;
            c.eb = schematic_energy::Energy::from_pj(
                config.eb.saturating_sub(headroom).as_pj() * 9 / 10,
            );
            c
        };
        let mut ctx = FuncCtx::new(&m, table, &fn_config, &snapshot, &effects, fid);
        match analyze_function(&mut ctx, profile) {
            Ok(()) => {
                summaries[fid.index()] = summarize_function(&ctx);
                decisions[fid.index()] = extract_decisions(&ctx);
            }
            Err(PlacementError::NoFeasiblePlacement { .. }) => {
                // Degraded mode for this function: all-NVM with no
                // checkpoints from the path analysis; the verifier-driven
                // repair pass inserts whatever checkpoints soundness
                // requires (ROCKCLIMB-style), so compilation still
                // succeeds — just without VM savings here.
                let n = m.func(fid).blocks.len();
                decisions[fid.index()] = FuncDecisions {
                    alloc: vec![VarSet::empty(); n],
                    enabled: Vec::new(),
                    backedge: Vec::new(),
                };
                let overhead =
                    table.checkpoint_commit_cost(0).energy + table.checkpoint_resume_cost(0).energy;
                summaries[fid.index()] = FuncSummary {
                    has_checkpoint: true,
                    entry_energy: overhead * 2,
                    exit_energy: overhead * 2,
                    ..FuncSummary::default()
                };
            }
            Err(e) => return Err(e),
        }
    }
    drop(analyze_span);

    let mut instrumented = {
        let _span = schematic_obs::span("compile/instrument");
        instrument(&m, &decisions, "Schematic")
    };
    let repairs = {
        let _span = schematic_obs::span("compile/patch");
        patch_placement(&mut instrumented, table, config.eb, 256)?
    };

    // SVM must hold the largest per-block footprint.
    let peak = instrumented.plan.peak_bytes(&instrumented.module);
    if peak > config.svm_bytes {
        return Err(PlacementError::Unsound {
            detail: format!(
                "allocation plan needs {peak} bytes of VM but SVM = {}",
                config.svm_bytes
            ),
        });
    }

    let report = {
        let _span = schematic_obs::span("compile/verify");
        verify_placement(&instrumented, table, config.eb)
    };
    debug_assert!(report.is_sound(), "{:?}", report.violations);
    Ok(Compiled {
        instrumented,
        report,
        summaries,
        splits,
        repairs,
    })
}

fn extract_decisions(ctx: &FuncCtx<'_>) -> FuncDecisions {
    let alloc: Vec<VarSet> = ctx
        .alloc
        .iter()
        .map(|a| a.clone().unwrap_or_default())
        .collect();
    let mut enabled = Vec::new();
    for (&edge, &d) in &ctx.edges {
        if d != EdgeDecision::Enabled {
            continue;
        }
        let before = &alloc[edge.from.index()];
        let after = &alloc[edge.to.index()];
        let save = ctx.save_set(before, edge).iter().collect();
        let restore = ctx.restore_set(after, edge.to).iter().collect();
        enabled.push((edge, save, restore, after.clone()));
    }
    enabled.sort_by_key(|(e, _, _, _)| (e.from, e.to));
    let mut backedge = Vec::new();
    for cp in &ctx.backedge_cps {
        let header_alloc = &alloc[cp.edge.to.index()];
        let save = ctx.save_set(header_alloc, cp.edge).iter().collect();
        let restore = ctx.restore_set(header_alloc, cp.edge.to).iter().collect();
        backedge.push((cp.edge, cp.period, save, restore, header_alloc.clone()));
    }
    FuncDecisions {
        alloc,
        enabled,
        backedge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_emu::{run, Machine, RunConfig};
    use schematic_energy::Energy;

    /// Maps a TBPF (cycles) to the guaranteed-sound energy budget: the
    /// cheapest cycle costs `cpu_pj_per_cycle`, so an interval of energy
    /// `EB = tbpf × cpu_pj_per_cycle` never spans more than `tbpf`
    /// cycles.
    fn eb_for_tbpf(table: &CostTable, tbpf: u64) -> Energy {
        Energy::from_pj(table.cpu_pj_per_cycle) * tbpf
    }

    #[test]
    fn compiles_and_runs_crc_continuously() {
        let m = schematic_benchsuite::crc::build(1);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(eb_for_tbpf(&table, 10_000));
        let compiled = compile(&m, &table, &config).unwrap();
        assert!(compiled.report.is_sound());
        let out = run(&compiled.instrumented, RunConfig::default()).unwrap();
        assert!(out.completed());
        assert_eq!(out.result, Some(schematic_benchsuite::crc::oracle(1)));
        assert_eq!(out.metrics.coherence_violations, 0);
        assert!(out.metrics.peak_vm_bytes <= config.svm_bytes);
    }

    #[test]
    fn crc_survives_intermittent_power_with_no_reexecution() {
        let tbpf = 10_000;
        let m = schematic_benchsuite::crc::build(2);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(eb_for_tbpf(&table, tbpf));
        let compiled = compile(&m, &table, &config).unwrap();
        let out = Machine::new(&compiled.instrumented, &table, RunConfig::periodic(tbpf))
            .run()
            .unwrap();
        assert!(out.completed(), "status = {:?}", out.status);
        assert_eq!(out.result, Some(schematic_benchsuite::crc::oracle(2)));
        // The headline guarantees: no mid-interval failures, no rollback
        // re-execution energy (§IV-D).
        assert_eq!(out.metrics.unexpected_failures, 0);
        assert_eq!(out.metrics.reexecution, Energy::ZERO);
        assert!(out.metrics.checkpoints_committed > 0);
        assert!(out.metrics.sleep_events > 0);
    }

    #[test]
    fn uses_vm_when_profitable() {
        let tbpf = 10_000;
        let m = schematic_benchsuite::crc::build(3);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(eb_for_tbpf(&table, tbpf));
        let compiled = compile(&m, &table, &config).unwrap();
        let out = run(&compiled.instrumented, RunConfig::default()).unwrap();
        assert!(
            out.metrics.vm_reads + out.metrics.vm_writes > 0,
            "SCHEMATIC should place hot variables in VM"
        );
    }

    #[test]
    fn all_nvm_ablation_uses_no_vm() {
        let tbpf = 10_000;
        let m = schematic_benchsuite::crc::build(3);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(eb_for_tbpf(&table, tbpf)).all_nvm();
        let compiled = compile(&m, &table, &config).unwrap();
        let out = run(&compiled.instrumented, RunConfig::default()).unwrap();
        assert_eq!(out.metrics.vm_reads + out.metrics.vm_writes, 0);
        assert_eq!(out.metrics.peak_vm_bytes, 0);
    }

    #[test]
    fn schematic_beats_all_nvm_on_computation_energy() {
        // Fig. 7's shape: VM allocation reduces computation energy.
        let tbpf = 10_000;
        let m = schematic_benchsuite::crc::build(1);
        let table = CostTable::msp430fr5969();
        let hybrid = compile(&m, &table, &SchematicConfig::new(eb_for_tbpf(&table, tbpf))).unwrap();
        let nvm = compile(
            &m,
            &table,
            &SchematicConfig::new(eb_for_tbpf(&table, tbpf)).all_nvm(),
        )
        .unwrap();
        let h = run(&hybrid.instrumented, RunConfig::default()).unwrap();
        let n = run(&nvm.instrumented, RunConfig::default()).unwrap();
        assert!(
            h.metrics.computation < n.metrics.computation,
            "hybrid {} vs all-NVM {}",
            h.metrics.computation,
            n.metrics.computation
        );
    }

    #[test]
    fn invalid_module_is_rejected() {
        let m = Module::new("empty"); // no entry function
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(Energy::from_uj(4));
        // Module with no functions fails IR verification via entry check
        // only when entry set; an empty module compiles trivially? The
        // entry_func panic is avoided by the explicit check below.
        let mut m2 = m;
        m2.entry = Some(schematic_ir::FuncId(0));
        let err = compile(&m2, &table, &config).unwrap_err();
        assert!(matches!(err, PlacementError::InvalidModule { .. }));
    }

    #[test]
    fn functions_are_handled() {
        // bitcount calls three helpers per element — exercises callee
        // summaries and barriers.
        let tbpf = 10_000;
        let m = schematic_benchsuite::bitcount::build(4);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(eb_for_tbpf(&table, tbpf));
        let compiled = compile(&m, &table, &config).unwrap();
        let out = Machine::new(&compiled.instrumented, &table, RunConfig::periodic(tbpf))
            .run()
            .unwrap();
        assert!(out.completed(), "status = {:?}", out.status);
        assert_eq!(out.result, Some(schematic_benchsuite::bitcount::oracle(4)));
        assert_eq!(out.metrics.unexpected_failures, 0);
        assert_eq!(out.metrics.reexecution, Energy::ZERO);
    }
}
