//! Function-level analysis: regions, path selection, commitment of
//! decisions, loop handling (Algorithm 1), and the energy-flow analysis
//! used for summaries and the repair pass.
//!
//! A **region** is either a function's top level or one loop's body;
//! within a region, already-analyzed inner loops are collapsed into
//! single items (`Item`). Regions are analyzed one path at
//! a time, most frequent first (§III-A.3), each path placing checkpoints
//! and allocations via the RCG; decisions are final and inherited by
//! later paths.

use crate::ctx::{FuncCtx, Item, ItemPath};
use crate::error::{BackEdgeCheckpoint, EdgeDecision, PlacementError};
use crate::profile::Profile;
use crate::rcg::{place_on_path, PathEnv};
use crate::summary::{FuncSummary, LoopSummary};
use schematic_energy::Energy;
use schematic_ir::{AccessCount, BlockId, Edge, VarId, VarSet};
use std::collections::{HashMap, VecDeque};

/// Which region of a function is being analyzed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RegionKind {
    /// The function's top level (loops collapsed).
    TopLevel,
    /// The body of one loop (inner loops collapsed, back-edges removed).
    LoopBody(usize),
}

// ---------------------------------------------------------------------------
// Region structure helpers
// ---------------------------------------------------------------------------

impl<'a> FuncCtx<'a> {
    fn region_contains(&self, kind: RegionKind, b: BlockId) -> bool {
        match kind {
            RegionKind::TopLevel => true,
            RegionKind::LoopBody(l) => self.forest.loops[l].contains(b),
        }
    }

    /// The item representing block `b` at the level of `kind`: either
    /// the block itself or the outermost sub-loop (strictly inside the
    /// region) containing it.
    pub(crate) fn item_of(&self, kind: RegionKind, b: BlockId) -> Item {
        let scope = match kind {
            RegionKind::TopLevel => None,
            RegionKind::LoopBody(l) => Some(l),
        };
        let mut li = self.forest.innermost_of(b);
        let mut chosen = None;
        while let Some(i) = li {
            if Some(i) == scope {
                break;
            }
            chosen = Some(i);
            li = self.forest.loops[i].parent;
        }
        match chosen {
            Some(i) => Item::Loop(i),
            None => Item::Block(b),
        }
    }

    /// Whether `from -> to` is a back-edge of the region's own loop.
    fn is_region_back_edge(&self, kind: RegionKind, from: BlockId, to: BlockId) -> bool {
        match kind {
            RegionKind::TopLevel => false,
            RegionKind::LoopBody(l) => {
                let lp = &self.forest.loops[l];
                to == lp.header && lp.latches.contains(&from)
            }
        }
    }

    /// Successor items of `item` in the region's item graph, with the
    /// underlying CFG edge.
    fn item_succs(&self, kind: RegionKind, item: Item) -> Vec<(Item, Edge)> {
        let blocks: Vec<BlockId> = match item {
            Item::Block(b) => vec![b],
            Item::Loop(l) => self.forest.loops[l].body.iter().copied().collect(),
        };
        let mut out = Vec::new();
        for b in blocks {
            for &s in self.cfg.succs(b) {
                if !self.region_contains(kind, s) {
                    continue;
                }
                if self.is_region_back_edge(kind, b, s) {
                    continue;
                }
                let target = self.item_of(kind, s);
                if target == item {
                    continue; // internal edge of a collapsed loop
                }
                let e = Edge::new(b, s);
                if !out.contains(&(target, e)) {
                    out.push((target, e));
                }
            }
        }
        out
    }

    fn region_entry_item(&self, kind: RegionKind) -> Item {
        match kind {
            RegionKind::TopLevel => self.item_of(kind, self.func().entry),
            RegionKind::LoopBody(l) => Item::Block(self.forest.loops[l].header),
        }
    }

    /// Whether a path may end at `item` in this region.
    fn is_region_exit(&self, kind: RegionKind, item: Item) -> bool {
        let blocks: Vec<BlockId> = match item {
            Item::Block(b) => vec![b],
            Item::Loop(l) => self.forest.loops[l].body.iter().copied().collect(),
        };
        match kind {
            RegionKind::TopLevel => blocks.iter().any(|&b| self.func().block(b).term.is_ret()),
            RegionKind::LoopBody(l) => {
                let lp = &self.forest.loops[l];
                blocks.iter().any(|&b| {
                    lp.latches.contains(&b) || self.cfg.succs(b).iter().any(|s| !lp.contains(*s))
                })
            }
        }
    }

    /// Collapses a block path into an item path, or `None` when the path
    /// does not start at the region entry.
    fn collapse_path(&self, kind: RegionKind, blocks: &[BlockId]) -> Option<ItemPath> {
        // Longest prefix inside the region.
        let prefix: Vec<BlockId> = blocks
            .iter()
            .copied()
            .take_while(|&b| self.region_contains(kind, b))
            .collect();
        if prefix.is_empty() {
            return None;
        }
        let mut items = Vec::new();
        let mut links = Vec::new();
        for (i, &b) in prefix.iter().enumerate() {
            let item = self.item_of(kind, b);
            if items.last() == Some(&item) {
                continue; // still inside the same collapsed loop
            }
            if !items.is_empty() {
                links.push(Edge::new(prefix[i - 1], b));
            }
            items.push(item);
        }
        if items[0] != self.region_entry_item(kind) {
            return None;
        }
        Some(ItemPath { items, links })
    }

    /// Finds a structural path entry → `through` → exit in the item
    /// graph (BFS both ways).
    fn cover_item(&self, kind: RegionKind, through: Item) -> Option<ItemPath> {
        let entry = self.region_entry_item(kind);
        let to_target = self.bfs_path(kind, entry, |i| i == through)?;
        let onward = self.bfs_path(kind, through, |i| self.is_region_exit(kind, i))?;
        // Join, dropping the duplicated `through`.
        let mut items = to_target.items;
        let mut links = to_target.links;
        links.extend(onward.links);
        items.extend(onward.items.into_iter().skip(1));
        Some(ItemPath { items, links })
    }

    fn bfs_path(
        &self,
        kind: RegionKind,
        from: Item,
        is_goal: impl Fn(Item) -> bool,
    ) -> Option<ItemPath> {
        let mut prev: HashMap<Item, (Item, Edge)> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        let mut goal = None;
        if is_goal(from) {
            goal = Some(from);
        }
        while goal.is_none() {
            let cur = queue.pop_front()?;
            for (next, edge) in self.item_succs(kind, cur) {
                if next != from && !prev.contains_key(&next) {
                    prev.insert(next, (cur, edge));
                    if is_goal(next) {
                        goal = Some(next);
                        break;
                    }
                    queue.push_back(next);
                }
            }
        }
        // Reconstruct.
        let mut items = vec![goal?];
        let mut links = Vec::new();
        let mut cur = goal?;
        while cur != from {
            let (p, e) = prev[&cur];
            links.push(e);
            items.push(p);
            cur = p;
        }
        items.reverse();
        links.reverse();
        Some(ItemPath { items, links })
    }
}

// ---------------------------------------------------------------------------
// Region analysis
// ---------------------------------------------------------------------------

fn commit(ctx: &mut FuncCtx<'_>, path: &ItemPath, placed: &crate::rcg::PlacedPath) {
    for &idx in &placed.enabled_links {
        ctx.edges.insert(path.links[idx], EdgeDecision::Enabled);
    }
    for &idx in &placed.disabled_links {
        ctx.edges
            .entry(path.links[idx])
            .or_insert(EdgeDecision::Disabled);
    }
    let eb = ctx.config.eb;
    for interval in &placed.intervals {
        for &i in &interval.items {
            if let Item::Block(b) = path.items[i] {
                if ctx.alloc[b.index()].is_none() {
                    if std::env::var_os("SCHEMATIC_DEBUG_COMMIT").is_some() {
                        eprintln!(
                            "[commit] fn{} {b} <- {:?} (path {:?})",
                            ctx.fid.index(),
                            interval.alloc,
                            path.items
                        );
                    }
                    ctx.alloc[b.index()] = Some(interval.alloc.clone());
                }
            }
        }
        for &(i, consumed) in &interval.consumed_after {
            if let Item::Block(b) = path.items[i] {
                let left = eb.saturating_sub(consumed);
                let slot = &mut ctx.e_left[b.index()];
                *slot = Some(slot.map_or(left, |old| old.min(left)));
            }
        }
        for &(i, needed) in &interval.needed_from {
            if let Item::Block(b) = path.items[i] {
                let slot = &mut ctx.e_to_leave[b.index()];
                *slot = Some(slot.map_or(needed, |old| old.max(needed)));
            }
        }
    }
}

fn path_is_novel(ctx: &FuncCtx<'_>, path: &ItemPath) -> bool {
    let new_block = path.items.iter().any(|&it| match it {
        Item::Block(b) => ctx.alloc[b.index()].is_none(),
        Item::Loop(_) => false,
    });
    let new_edge = path
        .links
        .iter()
        .any(|&e| ctx.edge_decision(e) == EdgeDecision::Undecided);
    new_block || new_edge
}

pub(crate) fn analyze_region(
    ctx: &mut FuncCtx<'_>,
    kind: RegionKind,
    profile: &Profile,
) -> Result<(), PlacementError> {
    let env = PathEnv {
        boot: kind == RegionKind::TopLevel && ctx.module.entry == Some(ctx.fid),
        end_demand: Energy::ZERO,
        access_scale: match kind {
            RegionKind::TopLevel => 1,
            // Cumulative trip count over the loop and its ancestors: the
            // gain of keeping a variable in VM accrues every dynamic
            // execution of the body, while the save/restore overhead is
            // paid once per conditional-checkpoint period (feasibility is
            // checked separately, so optimism here cannot break EB).
            RegionKind::LoopBody(l) => {
                let mut scale: u64 = 1;
                let mut cur = Some(l);
                while let Some(i) = cur {
                    scale = scale.saturating_mul(ctx.forest.loops[i].max_iters.unwrap_or(1).max(1));
                    cur = ctx.forest.loops[i].parent;
                }
                scale.clamp(1, 1 << 20)
            }
        },
        loop_boundary: match kind {
            RegionKind::TopLevel => None,
            RegionKind::LoopBody(l) => {
                let lp = &ctx.forest.loops[l];
                lp.latches
                    .first()
                    .map(|&latch| (lp.header, Edge::new(latch, lp.header)))
            }
        },
        callee_boundary: kind == RegionKind::TopLevel && ctx.module.entry != Some(ctx.fid),
    };

    // 1. Profiled paths, most frequent first.
    let profiled: Vec<ItemPath> = profile
        .paths(ctx.fid)
        .iter()
        .filter_map(|(p, _)| ctx.collapse_path(kind, p.blocks()))
        .collect();
    // 2. Structural coverage for never-executed blocks (§III-A.3).
    let mut all_paths = profiled;
    let blocks: Vec<BlockId> = (0..ctx.func().blocks.len())
        .map(BlockId::from_usize)
        .collect();
    let mut budget = ctx.config.max_structural_paths;
    for b in blocks {
        if !ctx.region_contains(kind, b) {
            continue;
        }
        if ctx.item_of(kind, b) != Item::Block(b) {
            continue; // inside an analyzed sub-loop
        }
        if ctx.alloc[b.index()].is_some() {
            continue;
        }
        let covered = all_paths.iter().any(|p| p.items.contains(&Item::Block(b)));
        if covered || budget == 0 {
            continue;
        }
        if let Some(p) = ctx.cover_item(kind, Item::Block(b)) {
            all_paths.push(p);
            budget -= 1;
        }
    }

    for path in &all_paths {
        if !path_is_novel(ctx, path) {
            continue;
        }
        match place_on_path(ctx, path, env) {
            Some(placed) => commit(ctx, path, &placed),
            None => {
                return Err(PlacementError::NoFeasiblePlacement {
                    func: ctx.fid,
                    at: match path.items[0] {
                        Item::Block(b) => b,
                        Item::Loop(l) => ctx.forest.loops[l].header,
                    },
                })
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Loop handling (Algorithm 1)
// ---------------------------------------------------------------------------

/// The effective allocation of a block, falling back to the enclosing
/// analyzed loop's allocation.
fn effective_alloc(ctx: &FuncCtx<'_>, b: BlockId) -> VarSet {
    if let Some(a) = &ctx.alloc[b.index()] {
        return a.clone();
    }
    if let Some(li) = ctx.forest.innermost_of(b) {
        if let Some(s) = &ctx.loop_sums[li] {
            return s.alloc.clone();
        }
    }
    VarSet::empty()
}

/// Does the loop body contain any checkpoint (enabled edge, barrier
/// item, or a child loop with checkpoints)?
fn loop_has_internal_cp(ctx: &FuncCtx<'_>, l: usize) -> bool {
    let lp = &ctx.forest.loops[l];
    for &b in &lp.body {
        for &s in ctx.cfg.succs(b) {
            if lp.contains(s)
                && !ctx.is_region_back_edge(RegionKind::LoopBody(l), b, s)
                && ctx.edge_decision(Edge::new(b, s)) == EdgeDecision::Enabled
            {
                return true;
            }
        }
        if ctx.is_barrier(ctx.item_of(RegionKind::LoopBody(l), b))
            && ctx.item_of(RegionKind::LoopBody(l), b) == Item::Block(b)
        {
            return true;
        }
    }
    // Child loops with checkpoints.
    ctx.forest.loops[l].children.iter().any(|&c| {
        ctx.loop_sums[c]
            .as_ref()
            .map(|s| s.has_checkpoint)
            .unwrap_or(false)
    })
}

/// Worst-case energy of one loop iteration (header to latch, inner
/// loops at their summarized totals), under the committed allocations.
fn worst_iteration(ctx: &FuncCtx<'_>, l: usize) -> Energy {
    // Longest path in the item DAG of the loop body.
    let kind = RegionKind::LoopBody(l);
    let entry = ctx.region_entry_item(kind);
    let mut memo: HashMap<Item, Energy> = HashMap::new();
    fn go(
        ctx: &FuncCtx<'_>,
        kind: RegionKind,
        item: Item,
        memo: &mut HashMap<Item, Energy>,
    ) -> Energy {
        if let Some(&e) = memo.get(&item) {
            return e;
        }
        let own = match item {
            Item::Block(b) => {
                let alloc = effective_alloc(ctx, b);
                if ctx.is_barrier(item) {
                    let bb = ctx.barrier_bounds(item);
                    bb.entry + bb.exit
                } else {
                    ctx.block_cost(b, &alloc)
                }
            }
            Item::Loop(li) => {
                let s = ctx.loop_sums[li].as_ref().expect("child analyzed first");
                if s.has_checkpoint {
                    s.entry_energy + s.exit_energy
                } else {
                    s.total
                }
            }
        };
        let best = ctx
            .item_succs(kind, item)
            .into_iter()
            .map(|(next, _)| go(ctx, kind, next, memo))
            .max()
            .unwrap_or(Energy::ZERO);
        let total = own + best;
        memo.insert(item, total);
        total
    }
    go(ctx, kind, entry, &mut memo)
}

pub(crate) fn analyze_loop(
    ctx: &mut FuncCtx<'_>,
    l: usize,
    profile: &Profile,
) -> Result<(), PlacementError> {
    // Step 1: analyze the body with the back-edge removed.
    analyze_region(ctx, RegionKind::LoopBody(l), profile)?;

    let lp = ctx.forest.loops[l].clone();
    let header_alloc = effective_alloc(ctx, lp.header);
    let internal_cp = loop_has_internal_cp(ctx, l);
    let max_iters = lp.max_iters.unwrap_or(1).max(1);

    // Step 2: decide the back-edge checkpoint. Algorithm 1 places a
    // per-iteration migration checkpoint when the latch and header
    // allocations differ; when the latch is a plain block we instead
    // unify its allocation with the header's (a strictly cheaper way to
    // satisfy "allocation changes only at checkpoints" — the runtime
    // reconciles any residual dirty state honestly).
    let mut backedge_period = None;
    let mut alloc_mismatch = false;
    for &latch in &lp.latches {
        if effective_alloc(ctx, latch) != header_alloc {
            if ctx.forest.innermost_of(latch) == Some(l) {
                ctx.alloc[latch.index()] = Some(header_alloc.clone());
            } else {
                alloc_mismatch = true;
            }
        }
    }
    // The unification above may have changed latch allocations, so the
    // per-iteration energy must be measured only now.
    let iter_energy = worst_iteration(ctx, l);
    if alloc_mismatch {
        backedge_period = Some(1);
    } else if !internal_cp {
        // numit = floor(EB / Eloop), with the checkpoint's own save and
        // resume costs carved out of the budget for soundness.
        let save_words = ctx.set_words(&header_alloc.intersection(&ctx.written));
        let restore_words = ctx.set_words(&header_alloc);
        let overhead = ctx.table.checkpoint_commit_cost(save_words).energy
            + ctx.table.checkpoint_resume_cost(restore_words).energy;
        let budget = ctx.config.eb.saturating_sub(overhead);
        // Each iteration additionally pays the conditional checkpoint's
        // counter check and the split block's branch.
        let iter_eff = iter_energy
            + ctx.table.cond_check.energy
            + Energy::from_pj(ctx.table.cpu_pj_per_cycle) * ctx.table.branch_cycles;
        let numit = budget.div_floor(iter_eff).unwrap_or(u64::MAX).max(1);
        if numit <= max_iters {
            backedge_period = Some(u32::try_from(numit.min(u32::MAX as u64)).expect("clamped"));
        }
    }
    if std::env::var_os("SCHEMATIC_DEBUG").is_some() {
        eprintln!(
            "[analyze_loop] fn{} loop@{:?} iters={} iter_energy={} internal_cp={} mismatch={} period={:?} header_alloc={:?}",
            ctx.fid.index(), lp.header, max_iters, iter_energy, internal_cp, alloc_mismatch, backedge_period, header_alloc
        );
    }
    if let Some(period) = backedge_period {
        for &latch in &lp.latches {
            ctx.backedge_cps.push(BackEdgeCheckpoint {
                edge: Edge::new(latch, lp.header),
                period,
            });
        }
    }

    // Step 3: summarize the loop for the enclosing region.
    let has_checkpoint = internal_cp || backedge_period.is_some();
    let trips = max_iters;
    let mut access: HashMap<VarId, AccessCount> = HashMap::new();
    for &b in &lp.body {
        let item = ctx.item_of(RegionKind::LoopBody(l), b);
        match item {
            Item::Block(bb) if bb == b => {
                for (v, c) in ctx.item_access(item) {
                    let e = access.entry(v).or_default();
                    e.reads += c.reads.saturating_mul(trips);
                    e.writes += c.writes.saturating_mul(trips);
                }
            }
            Item::Loop(child) if ctx.forest.loops[child].header == b => {
                // Child loop counted once (its access counts are already
                // trip-scaled); scale by this loop's trips.
                if let Some(s) = &ctx.loop_sums[child] {
                    for (&v, &c) in &s.access {
                        let e = access.entry(v).or_default();
                        e.reads += c.reads.saturating_mul(trips);
                        e.writes += c.writes.saturating_mul(trips);
                    }
                }
            }
            _ => {}
        }
    }

    let vm_bytes = lp
        .body
        .iter()
        .map(|&b| {
            let own = ctx.set_bytes(&effective_alloc(ctx, b));
            own + ctx.item_reserved_bytes(Item::Block(b))
        })
        .max()
        .unwrap_or(0);

    let (entry_energy, exit_energy, total) = if !has_checkpoint {
        let t = iter_energy.saturating_mul(trips.saturating_add(1));
        (t, t, t)
    } else if internal_cp {
        // Internal checkpoints: the stretch entering the loop runs until
        // the first reset inside an iteration; the stretch leaving runs
        // from the last reset to the latch/exit. (A back-edge migration
        // checkpoint may coexist; the internal resets dominate.)
        let (head, tail, _) = region_head_tail(ctx, RegionKind::LoopBody(l));
        (head, tail, iter_energy)
    } else {
        let period = backedge_period.expect("checkpointed loop without internal cps");
        let k_iter = iter_energy.saturating_mul(u64::from(period));
        // The stretch entering the loop ends when the conditional
        // checkpoint first fires — commit included; the stretch leaving
        // starts at its resume.
        let save_words = ctx.set_words(&header_alloc.intersection(&ctx.written));
        let restore_words = ctx.set_words(&header_alloc);
        let commit = ctx.table.checkpoint_commit_cost(save_words).energy;
        let resume = ctx.table.checkpoint_resume_cost(restore_words).energy;
        (k_iter + commit, k_iter + resume, k_iter)
    };

    ctx.loop_sums[l] = Some(LoopSummary {
        has_checkpoint,
        entry_energy,
        exit_energy,
        total,
        alloc: header_alloc,
        vm_bytes,
        access,
        max_iters: trips,
        backedge_period,
    });
    Ok(())
}

/// Forward flow over a region's item DAG: worst energy from region
/// entry to the first reset (`head`) and from the last reset to any
/// region exit (`tail`). Resets are enabled checkpoint edges and
/// barrier/checkpointed items. With no resets, `head == tail ==` the
/// region's single-segment worst cost.
pub(crate) fn region_head_tail(ctx: &FuncCtx<'_>, kind: RegionKind) -> (Energy, Energy, bool) {
    let entry = ctx.region_entry_item(kind);
    let order = topo_items(ctx, kind, entry);
    // (B = energy since last reset, A = Some(energy) while a reset-free
    // path from the region entry exists)
    let mut in_b: HashMap<Item, Energy> = HashMap::new();
    let mut in_a: HashMap<Item, Option<Energy>> = HashMap::new();
    in_b.insert(entry, Energy::ZERO);
    in_a.insert(entry, Some(Energy::ZERO));
    let mut head = Energy::ZERO;
    let mut tail = Energy::ZERO;
    let mut any_reset = false;

    for &item in &order {
        let b = in_b.get(&item).copied().unwrap_or(Energy::ZERO);
        let a = in_a.get(&item).copied().unwrap_or(None);
        let (out_b, out_a) = if item_resets(ctx, item) {
            any_reset = true;
            if let Some(a) = a {
                head = head.max(a + item_entry_cost(ctx, item));
            }
            let exit = match item {
                Item::Loop(l) => ctx.loop_sums[l].as_ref().expect("analyzed").exit_energy,
                Item::Block(_) => ctx.barrier_bounds(item).exit,
            };
            (exit, None)
        } else {
            let c = item_flow_cost(ctx, item);
            (b + c, a.map(|x| x + c))
        };

        if ctx.is_region_exit(kind, item) {
            tail = tail.max(out_b);
            if let Some(a) = out_a {
                head = head.max(a);
            }
        }

        for (succ, edge) in ctx.item_succs(kind, item) {
            let (nb, na) = if ctx.edge_decision(edge) == EdgeDecision::Enabled {
                any_reset = true;
                if let Some(a) = out_a {
                    let from_alloc = match item {
                        Item::Block(bb) => ctx.alloc[bb.index()].clone().unwrap_or_default(),
                        Item::Loop(l) => ctx.loop_sums[l]
                            .as_ref()
                            .map(|s| s.alloc.clone())
                            .unwrap_or_default(),
                    };
                    let words = ctx.set_words(&ctx.save_set(&from_alloc, edge));
                    head = head.max(a + ctx.table.checkpoint_commit_cost(words).energy);
                }
                (ctx.table.checkpoint_resume_cost(0).energy, None)
            } else {
                (out_b, out_a)
            };
            let eb = in_b.entry(succ).or_insert(Energy::ZERO);
            *eb = (*eb).max(nb);
            let ea = in_a.entry(succ).or_insert(None);
            *ea = match (*ea, na) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (Some(x), None) => Some(x),
                (None, Some(y)) => Some(y),
                (None, None) => None,
            };
        }
    }
    if !any_reset {
        head = head.max(tail);
        tail = head;
    }
    (head, tail, any_reset)
}

// ---------------------------------------------------------------------------
// Whole-function driver and summary
// ---------------------------------------------------------------------------

/// Analyzes one function: loops bottom-up (Algorithm 1), then the top
/// level, then defaults for anything unreachable.
pub(crate) fn analyze_function(
    ctx: &mut FuncCtx<'_>,
    profile: &Profile,
) -> Result<(), PlacementError> {
    for l in ctx.forest.bottom_up() {
        analyze_loop(ctx, l, profile)?;
    }
    analyze_region(ctx, RegionKind::TopLevel, profile)?;
    // Unreachable or uncovered blocks default to all-NVM.
    for slot in ctx.alloc.iter_mut() {
        if slot.is_none() {
            *slot = Some(VarSet::empty());
        }
    }
    Ok(())
}

/// Builds the function summary from the committed decisions.
pub(crate) fn summarize_function(ctx: &FuncCtx<'_>) -> FuncSummary {
    let has_own_cp =
        ctx.edges.values().any(|d| *d == EdgeDecision::Enabled) || !ctx.backedge_cps.is_empty();
    let has_callee_cp = ctx.func().blocks.iter().flat_map(|b| &b.insts).any(|i| {
        matches!(i, schematic_ir::Inst::Call { func, .. }
            if ctx.summaries[func.index()].has_checkpoint)
    });
    let has_checkpoint = has_own_cp || has_callee_cp;

    // Worst-case entry→first-reset and last-reset→exit energies via a
    // longest-path pass over the top-level item DAG, treating every
    // reset (enabled edge, barrier, checkpointed loop) as a boundary.
    let kind = RegionKind::TopLevel;
    let entry = ctx.region_entry_item(kind);
    let mut memo_fwd: HashMap<Item, (Energy, bool)> = HashMap::new();
    // forward: max energy from function entry to *reaching* item start
    // without crossing a reset; bool = a reset-free path exists.
    let order = topo_items(ctx, kind, entry);
    for &item in &order {
        let incoming: Vec<(Energy, bool)> = order
            .iter()
            .filter_map(|&p| {
                let succs = ctx.item_succs(kind, p);
                succs.iter().find(|(s, _)| *s == item).map(|(_, e)| {
                    let (acc, clean) = memo_fwd.get(&p).copied().unwrap_or((Energy::ZERO, true));
                    let after = acc + item_flow_cost(ctx, p);
                    if ctx.edge_decision(*e) == EdgeDecision::Enabled || item_resets(ctx, p) {
                        (Energy::ZERO, false)
                    } else {
                        (after, clean)
                    }
                })
            })
            .collect();
        let val = if item == entry || incoming.is_empty() {
            (Energy::ZERO, true)
        } else {
            (
                incoming
                    .iter()
                    .map(|(e, _)| *e)
                    .max()
                    .unwrap_or(Energy::ZERO),
                incoming.iter().any(|(_, c)| *c),
            )
        };
        memo_fwd.insert(item, val);
    }

    let mut entry_energy = Energy::ZERO;
    let mut exit_energy = Energy::ZERO;
    for &item in &order {
        let (acc, clean) = memo_fwd.get(&item).copied().unwrap_or((Energy::ZERO, true));
        let through = acc + item_flow_cost(ctx, item);
        if ctx.is_region_exit(kind, item) {
            exit_energy = exit_energy.max(through);
            if clean {
                entry_energy = entry_energy.max(through);
            }
        }
        if item_resets(ctx, item) && clean {
            // First reset reached: the head segment ends here.
            entry_energy = entry_energy.max(acc + item_entry_cost(ctx, item));
        }
        for (s, e) in ctx.item_succs(kind, item) {
            let _ = s;
            if ctx.edge_decision(e) == EdgeDecision::Enabled && clean {
                entry_energy = entry_energy.max(through);
            }
        }
    }
    if !has_checkpoint {
        // Whole body is one segment.
        entry_energy = entry_energy.max(exit_energy);
        exit_energy = entry_energy;
    }

    // Aggregate access counts (trip-scaled) and VM footprint.
    let mut access: HashMap<VarId, AccessCount> = HashMap::new();
    for &item in &order {
        for (v, c) in item_flow_access(ctx, item) {
            *access.entry(v).or_default() += c;
        }
    }
    let mut vm_vars = VarSet::empty();
    let mut vm_bytes = 0;
    for (i, a) in ctx.alloc.iter().enumerate() {
        if let Some(set) = a {
            vm_vars.union_with(set);
            let b = BlockId::from_usize(i);
            vm_bytes = vm_bytes.max(ctx.set_bytes(set) + ctx.item_reserved_bytes(Item::Block(b)));
        }
    }
    for s in ctx.loop_sums.iter().flatten() {
        vm_vars.union_with(&s.alloc);
        vm_bytes = vm_bytes.max(s.vm_bytes);
    }

    FuncSummary {
        has_checkpoint,
        entry_energy,
        exit_energy,
        vm_vars,
        vm_bytes,
        access,
    }
}

/// Topological order of the region's item DAG (region back-edges and
/// collapsed loops make it acyclic for reducible CFGs).
fn topo_items(ctx: &FuncCtx<'_>, kind: RegionKind, entry: Item) -> Vec<Item> {
    let mut order = Vec::new();
    let mut state: HashMap<Item, u8> = HashMap::new(); // 1 = visiting, 2 = done
    fn go(
        ctx: &FuncCtx<'_>,
        kind: RegionKind,
        item: Item,
        state: &mut HashMap<Item, u8>,
        order: &mut Vec<Item>,
    ) {
        if state.contains_key(&item) {
            return;
        }
        state.insert(item, 1);
        for (next, _) in ctx.item_succs(kind, item) {
            go(ctx, kind, next, state, order);
        }
        state.insert(item, 2);
        order.push(item);
    }
    go(ctx, kind, entry, &mut state, &mut order);
    order.reverse();
    order
}

/// Whether passing through the item resets the energy accumulation
/// (it contains a checkpoint).
fn item_resets(ctx: &FuncCtx<'_>, item: Item) -> bool {
    match item {
        Item::Loop(l) => ctx.loop_sums[l]
            .as_ref()
            .map(|s| s.has_checkpoint)
            .unwrap_or(false),
        Item::Block(_) => ctx.is_barrier(item),
    }
}

/// Energy contribution of an item in flow analyses: resetting items
/// contribute entry + exit (the head consumed before their first reset
/// plus the tail after their last).
fn item_flow_cost(ctx: &FuncCtx<'_>, item: Item) -> Energy {
    if item_resets(ctx, item) {
        let b = match item {
            Item::Loop(l) => {
                let s = ctx.loop_sums[l].as_ref().expect("analyzed");
                return s.exit_energy;
            }
            Item::Block(_) => ctx.barrier_bounds(item),
        };
        return b.exit;
    }
    match item {
        Item::Block(b) => ctx.block_cost(b, &effective_alloc(ctx, b)),
        Item::Loop(l) => ctx.loop_sums[l].as_ref().expect("analyzed").total,
    }
}

/// Energy from an item's start to its first internal reset.
fn item_entry_cost(ctx: &FuncCtx<'_>, item: Item) -> Energy {
    match item {
        Item::Loop(l) => ctx.loop_sums[l].as_ref().expect("analyzed").entry_energy,
        Item::Block(_) => ctx.barrier_bounds(item).entry,
    }
}

fn item_flow_access(ctx: &FuncCtx<'_>, item: Item) -> HashMap<VarId, AccessCount> {
    match item {
        Item::Loop(l) => ctx.loop_sums[l]
            .as_ref()
            .map(|s| s.access.clone())
            .unwrap_or_default(),
        Item::Block(_) => ctx.item_access(item),
    }
}

// ---------------------------------------------------------------------------
// Whole-program soundness: forward progress + memory anomalies
// ---------------------------------------------------------------------------

/// Both halves of the §II-B soundness argument for one instrumented
/// program: the forward-progress verdict from [`crate::pverify`] and the
/// WAR-hazard / idempotence report from [`crate::anomaly`].
#[derive(Debug, Clone)]
pub struct SoundnessReport {
    /// Forward progress: every inter-checkpoint stretch fits in `EB`.
    pub placement: crate::pverify::PlacementReport,
    /// Memory anomalies: per-region WAR-hazard classification.
    pub anomalies: crate::anomaly::AnomalyReport,
}

impl SoundnessReport {
    /// `true` when the placement is energy-sound *and* no region is
    /// `Hazardous` (shielded, latent WARs are allowed — they cannot
    /// manifest under a sound wait-for-recharge placement).
    pub fn is_sound(&self) -> bool {
        self.placement.is_sound() && self.anomalies.is_sound()
    }

    /// One-line summary for reports and cell footnotes.
    pub fn verdict(&self) -> String {
        let placement = if self.placement.is_sound() {
            "placement sound".to_string()
        } else {
            format!(
                "placement unsound ({} violation(s))",
                self.placement.violations.len()
            )
        };
        format!("{placement}; {}", self.anomalies.verdict())
    }

    /// Like [`SoundnessReport::verdict`], but names the variables behind
    /// any predicted WAR so footnotes are diagnosable without rerunning
    /// soundcheck.
    pub fn verdict_named(&self, module: &schematic_ir::Module) -> String {
        let mut s = self.verdict();
        let names = self.anomalies.war_var_names(module);
        if !names.is_empty() {
            s.push_str(&format!(" [WAR vars: {}]", names.join(", ")));
        }
        s
    }
}

/// Checks one instrumented program end to end: re-verifies forward
/// progress under budget `eb`, runs the index-sensitive inter-checkpoint
/// WAR-hazard analysis against the program's allocation plan, and
/// classifies `Rollback` regions against their worst-case re-execution
/// bound under the same budget.
///
/// # Errors
///
/// Fails only on recursive call graphs ([`PlacementError::Recursive`]).
pub fn check_all(
    im: &schematic_emu::InstrumentedModule,
    table: &schematic_energy::CostTable,
    eb: Energy,
) -> Result<SoundnessReport, PlacementError> {
    let placement = crate::pverify::verify_placement(im, table, eb);
    let anomalies = crate::anomaly::check_anomalies_bounded(im, placement.is_sound(), table, eb)?;
    Ok(SoundnessReport {
        placement,
        anomalies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchematicConfig;
    use schematic_energy::CostTable;
    use schematic_ir::{call_effects, CmpOp, FunctionBuilder, Module, ModuleBuilder, Variable};

    fn looped_module(loads: usize, trips: u64) -> Module {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.copy(0);
        f.br(header);
        f.switch_to(header);
        f.set_max_iters(header, trips + 1);
        let c = f.cmp(CmpOp::UGe, i, trips as i32);
        f.cond_br(c, exit, body);
        f.switch_to(body);
        for _ in 0..loads {
            let v = f.load_scalar(x);
            f.store_scalar(x, v);
        }
        let i2 = f.bin(schematic_ir::BinOp::Add, i, 1);
        f.copy_to(i, i2);
        f.br(header);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    fn analyzed<'a>(
        m: &'a Module,
        table: &'a CostTable,
        config: &'a SchematicConfig,
        summaries: &'a [FuncSummary],
        effects: &[schematic_ir::CallEffect],
    ) -> FuncCtx<'a> {
        let profile = Profile::collect(m, table, 2);
        let mut ctx = FuncCtx::new(m, table, config, summaries, effects, m.entry_func());
        analyze_function(&mut ctx, &profile).unwrap();
        ctx
    }

    #[test]
    fn ample_budget_no_backedge_checkpoint() {
        let m = looped_module(3, 10);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(Energy::from_uj(1000));
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); 1];
        let ctx = analyzed(&m, &table, &config, &summaries, &effects);
        assert!(ctx.backedge_cps.is_empty());
        assert!(!ctx.edges.values().any(|d| *d == EdgeDecision::Enabled));
        // The hot scalar lands in VM in the loop body.
        let x = m.var_by_name("x").unwrap();
        let body = m.funcs[0].block_by_name("body").unwrap();
        assert!(ctx.alloc[body.index()].as_ref().unwrap().contains(x));
    }

    #[test]
    fn tight_budget_places_conditional_backedge_checkpoint() {
        // 30 load/store pairs per iteration, 200 iterations: one
        // iteration fits the budget but the whole loop does not.
        let m = looped_module(30, 200);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(Energy::from_pj(800_000));
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); 1];
        let ctx = analyzed(&m, &table, &config, &summaries, &effects);
        assert_eq!(ctx.backedge_cps.len(), 1, "cps = {:?}", ctx.backedge_cps);
        let cp = &ctx.backedge_cps[0];
        assert!(cp.period >= 1);
        // The period covers as many iterations as fit the budget.
        let sum = summarize_function(&ctx);
        assert!(sum.has_checkpoint);
        assert!(sum.entry_energy <= config.eb);
    }

    #[test]
    fn summary_of_checkpoint_free_function() {
        let m = looped_module(2, 4);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(Energy::from_uj(1000));
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); 1];
        let ctx = analyzed(&m, &table, &config, &summaries, &effects);
        let sum = summarize_function(&ctx);
        assert!(!sum.has_checkpoint);
        assert_eq!(sum.entry_energy, sum.exit_energy);
        assert!(sum.entry_energy > Energy::ZERO);
        let x = m.var_by_name("x").unwrap();
        assert!(sum.access.contains_key(&x));
        // Access counts are trip-scaled: at least 2 loads × 4 trips.
        assert!(sum.access[&x].reads >= 8);
        assert!(sum.vm_vars.contains(x));
        assert!(sum.vm_bytes >= 4);
    }

    #[test]
    fn all_blocks_get_allocations() {
        let m = looped_module(3, 10);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(Energy::from_uj(1000));
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); 1];
        let ctx = analyzed(&m, &table, &config, &summaries, &effects);
        assert!(ctx.alloc.iter().all(Option::is_some));
    }

    #[test]
    fn impossible_budget_reports_error() {
        let m = looped_module(30, 10);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(Energy::from_pj(100));
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); 1];
        let profile = Profile::collect(&m, &table, 1);
        let mut ctx = FuncCtx::new(&m, &table, &config, &summaries, &effects, m.entry_func());
        let err = analyze_function(&mut ctx, &profile).unwrap_err();
        assert!(matches!(err, PlacementError::NoFeasiblePlacement { .. }));
    }

    #[test]
    fn all_nvm_config_keeps_vm_empty() {
        let m = looped_module(5, 10);
        let table = CostTable::msp430fr5969();
        let config = SchematicConfig::new(Energy::from_uj(1000)).all_nvm();
        let effects = call_effects(&m);
        let summaries = vec![FuncSummary::default(); 1];
        let ctx = analyzed(&m, &table, &config, &summaries, &effects);
        for a in ctx.alloc.iter().flatten() {
            assert!(a.is_empty());
        }
    }
}
