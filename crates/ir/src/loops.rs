//! Natural-loop detection and the loop-nesting forest.
//!
//! SCHEMATIC analyzes loops bottom-up over the loop-nesting tree
//! (§III-B.2): inner loops first, each summarized before its enclosing
//! loop or function body is analyzed. A natural loop is identified by a
//! back-edge `latch -> header` where `header` dominates `latch`; the loop
//! body is every block that can reach the latch without passing through
//! the header.

use crate::cfg::Cfg;
use crate::dom::Dominators;
use crate::ids::BlockId;
use crate::module::Function;
use std::collections::BTreeSet;

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// The single entry block of the loop.
    pub header: BlockId,
    /// Sources of back-edges to the header. The paper assumes a single
    /// back-edge per loop without loss of generality; we support several
    /// (they are treated uniformly).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including the header and latches.
    pub body: BTreeSet<BlockId>,
    /// Index of the parent loop in the forest, if nested.
    pub parent: Option<usize>,
    /// Indices of directly nested loops.
    pub children: Vec<usize>,
    /// Nesting depth (outermost = 0).
    pub depth: usize,
    /// Annotated maximum trip count ([`Function::max_iters`]), if present.
    pub max_iters: Option<u64>,
}

impl Loop {
    /// Whether `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// The loop-nesting forest of a function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LoopForest {
    /// All loops; children always have larger indices than their parents.
    pub loops: Vec<Loop>,
    /// For each block, the index of the innermost loop containing it.
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Detects all natural loops of `func`.
    ///
    /// Loops sharing a header are merged into one loop with several
    /// latches (the usual LLVM-style normalization).
    pub fn new(func: &Function, cfg: &Cfg, dom: &Dominators) -> Self {
        // 1. Find back-edges, grouped by header.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for (i, ss) in cfg.succs.iter().enumerate() {
            let from = BlockId::from_usize(i);
            if !dom.is_reachable(from) {
                continue;
            }
            for &to in ss {
                if dom.dominates(to, from) {
                    match by_header.iter_mut().find(|(h, _)| *h == to) {
                        Some((_, latches)) => latches.push(from),
                        None => by_header.push((to, vec![from])),
                    }
                }
            }
        }

        // 2. Compute each loop's body: blocks that reach a latch without
        //    passing through the header (classic worklist over preds).
        let mut loops: Vec<Loop> = Vec::new();
        for (header, latches) in by_header {
            let mut body: BTreeSet<BlockId> = BTreeSet::new();
            body.insert(header);
            let mut work: Vec<BlockId> = latches.clone();
            while let Some(b) = work.pop() {
                if body.insert(b) {
                    for &p in cfg.preds(b) {
                        if dom.is_reachable(p) {
                            work.push(p);
                        }
                    }
                }
            }
            loops.push(Loop {
                header,
                latches,
                body,
                parent: None,
                children: Vec::new(),
                depth: 0,
                max_iters: func.max_iters.get(&header).copied(),
            });
        }

        // 3. Nesting: sort outermost-first (larger bodies first), then the
        //    parent of L is the smallest loop strictly containing L's header
        //    other than L itself.
        loops.sort_by(|a, b| {
            b.body
                .len()
                .cmp(&a.body.len())
                .then(a.header.cmp(&b.header))
        });
        let n = loops.len();
        for i in 0..n {
            // Parent = the latest (smallest) earlier loop containing body[i].
            let mut parent = None;
            for j in 0..i {
                if loops[j].body.contains(&loops[i].header) && loops[j].header != loops[i].header {
                    parent = Some(j);
                }
            }
            loops[i].parent = parent;
            if let Some(p) = parent {
                loops[p].children.push(i);
                loops[i].depth = loops[p].depth + 1;
            }
        }

        // 4. Innermost-loop map.
        let mut innermost = vec![None; func.blocks.len()];
        // Process outermost-first so inner loops overwrite.
        for (idx, l) in loops.iter().enumerate() {
            for &b in &l.body {
                innermost[b.index()] = Some(idx);
            }
        }

        LoopForest { loops, innermost }
    }

    /// Convenience constructor running CFG + dominators internally.
    pub fn of(func: &Function) -> Self {
        let cfg = Cfg::new(func);
        let dom = Dominators::new(&cfg);
        Self::new(func, &cfg, &dom)
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_of(&self, b: BlockId) -> Option<usize> {
        self.innermost.get(b.index()).copied().flatten()
    }

    /// Loop indices ordered innermost-first (children before parents),
    /// the order in which SCHEMATIC analyzes loops.
    pub fn bottom_up(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.loops.len()).collect();
        order.sort_by(|&a, &b| {
            self.loops[b]
                .depth
                .cmp(&self.loops[a].depth)
                .then(a.cmp(&b))
        });
        order
    }

    /// Whether the edge `from -> to` is a back-edge of some loop.
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.loops
            .iter()
            .any(|l| l.header == to && l.latches.contains(&from))
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the function is loop-free.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn simple_loop() -> (Function, BlockId, BlockId) {
        let mut f = FunctionBuilder::new("f", 0);
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        f.br(header);
        f.switch_to(header);
        let c = f.copy(1);
        f.cond_br(c, body, exit);
        f.set_max_iters(header, 10);
        f.switch_to(body);
        f.br(header);
        f.switch_to(exit);
        f.ret(None);
        (f.finish(), header, body)
    }

    #[test]
    fn detects_simple_loop() {
        let (func, header, body) = simple_loop();
        let forest = LoopForest::of(&func);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, header);
        assert_eq!(l.latches, vec![body]);
        assert!(l.contains(header));
        assert!(l.contains(body));
        assert!(!l.contains(BlockId(0)));
        assert_eq!(l.max_iters, Some(10));
        assert_eq!(l.depth, 0);
        assert!(forest.is_back_edge(body, header));
        assert!(!forest.is_back_edge(header, body));
    }

    #[test]
    fn loop_free_function() {
        let mut f = FunctionBuilder::new("f", 0);
        f.ret(None);
        let forest = LoopForest::of(&f.finish());
        assert!(forest.is_empty());
        assert_eq!(forest.bottom_up(), Vec::<usize>::new());
    }

    #[test]
    fn nested_loops_form_tree() {
        let mut f = FunctionBuilder::new("f", 0);
        let outer = f.new_block("outer");
        let inner = f.new_block("inner");
        let inner_body = f.new_block("inner_body");
        let outer_latch = f.new_block("outer_latch");
        let exit = f.new_block("exit");
        f.br(outer);
        f.switch_to(outer);
        let c1 = f.copy(1);
        f.cond_br(c1, inner, exit);
        f.set_max_iters(outer, 5);
        f.switch_to(inner);
        let c2 = f.copy(1);
        f.cond_br(c2, inner_body, outer_latch);
        f.set_max_iters(inner, 7);
        f.switch_to(inner_body);
        f.br(inner);
        f.switch_to(outer_latch);
        f.br(outer);
        f.switch_to(exit);
        f.ret(None);
        let func = f.finish();
        let forest = LoopForest::of(&func);
        assert_eq!(forest.len(), 2);

        // Outermost loop is stored first (body is larger).
        let outer_l = &forest.loops[0];
        let inner_l = &forest.loops[1];
        assert_eq!(outer_l.header, outer);
        assert_eq!(inner_l.header, inner);
        assert_eq!(inner_l.parent, Some(0));
        assert_eq!(outer_l.children, vec![1]);
        assert_eq!(inner_l.depth, 1);
        assert!(outer_l.body.contains(&inner));
        assert!(!inner_l.body.contains(&outer_latch));

        // Bottom-up order: inner first.
        assert_eq!(forest.bottom_up(), vec![1, 0]);

        // Innermost map.
        assert_eq!(forest.innermost_of(inner_body), Some(1));
        assert_eq!(forest.innermost_of(outer_latch), Some(0));
        assert_eq!(forest.innermost_of(exit), None);
    }

    #[test]
    fn self_loop_is_detected() {
        let mut f = FunctionBuilder::new("f", 0);
        let l = f.new_block("l");
        let exit = f.new_block("exit");
        f.br(l);
        f.switch_to(l);
        let c = f.copy(1);
        f.cond_br(c, l, exit);
        f.switch_to(exit);
        f.ret(None);
        let forest = LoopForest::of(&f.finish());
        assert_eq!(forest.len(), 1);
        assert_eq!(forest.loops[0].header, l);
        assert_eq!(forest.loops[0].latches, vec![l]);
        assert_eq!(forest.loops[0].body.len(), 1);
    }

    #[test]
    fn shared_header_merges_latches() {
        // Two back-edges to the same header.
        let mut f = FunctionBuilder::new("f", 0);
        let h = f.new_block("h");
        let a = f.new_block("a");
        let b = f.new_block("b");
        let exit = f.new_block("exit");
        f.br(h);
        f.switch_to(h);
        let c = f.copy(1);
        f.cond_br(c, a, exit);
        f.switch_to(a);
        let c2 = f.copy(1);
        f.cond_br(c2, h, b);
        f.switch_to(b);
        f.br(h);
        f.switch_to(exit);
        f.ret(None);
        let forest = LoopForest::of(&f.finish());
        assert_eq!(forest.len(), 1);
        let mut latches = forest.loops[0].latches.clone();
        latches.sort();
        assert_eq!(latches, vec![a, b]);
    }
}
