//! Module verifier.
//!
//! Checks the structural invariants every pass and the emulator rely on:
//!
//! * block/terminator targets are in range;
//! * every register operand is below the function's register count and
//!   defined on every path before use (approximated by a forward
//!   dataflow of definitely-assigned registers);
//! * variable and function references are in range, call arity matches;
//! * constant array indices are within the variable's bounds;
//! * the module entry (if set) takes no parameters;
//! * the program is non-recursive (paper §III-B.1);
//! * every natural-loop header carries a `max_iters` annotation (needed
//!   by the WCEC analysis, §III-B.2).

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::dom::Dominators;
use crate::ids::{BlockId, FuncId, Reg};
use crate::inst::{Inst, Operand};
use crate::loops::LoopForest;
use crate::module::Module;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the error occurred, if function-scoped.
    pub func: Option<FuncId>,
    /// Block in which the error occurred, if block-scoped.
    pub block: Option<BlockId>,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.func, self.block) {
            (Some(fun), Some(b)) => write!(f, "[{fun} {b}] {}", self.message),
            (Some(fun), None) => write!(f, "[{fun}] {}", self.message),
            _ => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies `module`, returning all violations found (empty = valid).
pub fn verify_module(module: &Module) -> Vec<VerifyError> {
    let mut errors = Vec::new();

    if let Some(entry) = module.entry {
        if entry.index() >= module.funcs.len() {
            errors.push(VerifyError {
                func: None,
                block: None,
                message: format!("entry {entry} out of range"),
            });
            return errors;
        }
        if module.func(entry).n_params != 0 {
            errors.push(VerifyError {
                func: Some(entry),
                block: None,
                message: "entry function must take no parameters".into(),
            });
        }
    }

    // Duplicate names.
    for (i, v) in module.vars.iter().enumerate() {
        if module.vars[..i].iter().any(|w| w.name == v.name) {
            errors.push(VerifyError {
                func: None,
                block: None,
                message: format!("duplicate variable name '{}'", v.name),
            });
        }
    }
    for (i, f) in module.funcs.iter().enumerate() {
        if module.funcs[..i].iter().any(|g| g.name == f.name) {
            errors.push(VerifyError {
                func: None,
                block: None,
                message: format!("duplicate function name '{}'", f.name),
            });
        }
    }

    for (fid, _) in module.iter_funcs() {
        verify_function(module, fid, &mut errors);
    }

    // Recursion check (only meaningful if references are valid).
    if errors.is_empty() {
        let cg = CallGraph::new(module);
        if let Err(e) = cg.bottom_up_order(module) {
            errors.push(VerifyError {
                func: Some(e.func),
                block: None,
                message: e.to_string(),
            });
        }
    }

    errors
}

fn verify_function(module: &Module, fid: FuncId, errors: &mut Vec<VerifyError>) {
    let func = module.func(fid);
    let n_blocks = func.blocks.len();
    let err = |block: Option<BlockId>, message: String| VerifyError {
        func: Some(fid),
        block,
        message,
    };

    if n_blocks == 0 {
        errors.push(err(None, "function has no blocks".into()));
        return;
    }
    if func.entry.index() >= n_blocks {
        errors.push(err(None, format!("entry {} out of range", func.entry)));
        return;
    }

    let before = errors.len();

    for (bid, block) in func.iter_blocks() {
        // Terminator targets.
        for t in block.term.successors() {
            if t.index() >= n_blocks {
                errors.push(err(Some(bid), format!("branch target {t} out of range")));
            }
        }
        // Instruction well-formedness.
        for inst in &block.insts {
            let mut check_op = |op: Operand| {
                if let Operand::Reg(r) = op {
                    if r.index() >= func.n_regs {
                        errors.push(err(
                            Some(bid),
                            format!("register {r} out of range (n_regs={})", func.n_regs),
                        ));
                    }
                }
            };
            inst.for_each_use(&mut check_op);
            if let Some(d) = inst.def() {
                if d.index() >= func.n_regs {
                    errors.push(err(
                        Some(bid),
                        format!("defined register {d} out of range (n_regs={})", func.n_regs),
                    ));
                }
            }
            match inst {
                Inst::Load { var, idx, .. } | Inst::Store { var, idx, .. } => {
                    if var.index() >= module.vars.len() {
                        errors.push(err(Some(bid), format!("variable {var} out of range")));
                    } else if let Some(Operand::Imm(i)) = idx {
                        let words = module.var(*var).words;
                        if *i < 0 || *i as usize >= words {
                            errors.push(err(
                                Some(bid),
                                format!(
                                    "constant index {i} out of bounds for '{}' ({} words)",
                                    module.var(*var).name,
                                    words
                                ),
                            ));
                        }
                    }
                }
                Inst::SaveVar { var } | Inst::RestoreVar { var }
                    if var.index() >= module.vars.len() =>
                {
                    errors.push(err(Some(bid), format!("variable {var} out of range")));
                }
                Inst::Call {
                    func: callee, args, ..
                } => {
                    if callee.index() >= module.funcs.len() {
                        errors.push(err(Some(bid), format!("callee {callee} out of range")));
                    } else {
                        let expected = module.func(*callee).n_params;
                        if args.len() != expected {
                            errors.push(err(
                                Some(bid),
                                format!(
                                    "call to '{}' passes {} args, expected {}",
                                    module.func(*callee).name,
                                    args.len(),
                                    expected
                                ),
                            ));
                        }
                    }
                }
                Inst::CondCheckpoint { period, .. } if *period == 0 => {
                    errors.push(err(Some(bid), "condcheckpoint period must be >= 1".into()));
                }
                _ => {}
            }
        }
        block.term.for_each_use(|op| {
            if let Operand::Reg(r) = op {
                if r.index() >= func.n_regs {
                    errors.push(err(
                        Some(bid),
                        format!("register {r} out of range (n_regs={})", func.n_regs),
                    ));
                }
            }
        });
    }

    if errors.len() > before {
        return; // skip dataflow checks on structurally broken functions
    }

    // Definite-assignment dataflow: a register must be assigned on every
    // path before it is read. Parameters start assigned.
    let cfg = Cfg::new(func);
    let rpo = cfg.reverse_postorder();
    let n_regs = func.n_regs;
    let full = || vec![true; n_regs];
    let mut in_assigned: Vec<Option<Vec<bool>>> = vec![None; n_blocks];
    let mut entry_set = vec![false; n_regs];
    for slot in entry_set.iter_mut().take(func.n_params) {
        *slot = true;
    }
    in_assigned[func.entry.index()] = Some(entry_set);

    let transfer = |bid: BlockId, input: &[bool], report: &mut Vec<VerifyError>| -> Vec<bool> {
        let mut cur = input.to_vec();
        let block = func.block(bid);
        for inst in &block.insts {
            inst.for_each_use(|op| {
                if let Operand::Reg(r) = op {
                    if !cur[r.index()] {
                        report.push(err(
                            Some(bid),
                            format!("register {r} may be read before assignment"),
                        ));
                    }
                }
            });
            if let Some(d) = inst.def() {
                cur[d.index()] = true;
            }
        }
        block.term.for_each_use(|op| {
            if let Operand::Reg(r) = op {
                if !cur[r.index()] {
                    report.push(err(
                        Some(bid),
                        format!("register {r} may be read before assignment"),
                    ));
                }
            }
        });
        cur
    };

    // Fixpoint of intersection over predecessors.
    let mut changed = true;
    let mut sink = Vec::new(); // suppress duplicate reports during iteration
    while changed {
        changed = false;
        for &b in &rpo {
            let mut input = if b == func.entry {
                in_assigned[b.index()].clone().expect("entry seeded")
            } else {
                let mut acc: Option<Vec<bool>> = None;
                for &p in cfg.preds(b) {
                    if let Some(out_p) = &out_of(&in_assigned, p, func, &transfer, &mut sink) {
                        acc = Some(match acc {
                            None => out_p.clone(),
                            Some(mut a) => {
                                for (x, y) in a.iter_mut().zip(out_p) {
                                    *x &= *y;
                                }
                                a
                            }
                        });
                    }
                }
                match acc {
                    Some(a) => a,
                    None => full(), // unreachable block: vacuously assigned
                }
            };
            if b == func.entry {
                for slot in input.iter_mut().take(func.n_params) {
                    *slot = true;
                }
            }
            if in_assigned[b.index()].as_ref() != Some(&input) {
                in_assigned[b.index()] = Some(input);
                changed = true;
            }
        }
        sink.clear();
    }
    // Final pass with real error reporting.
    for &b in &rpo {
        if let Some(input) = &in_assigned[b.index()] {
            let _ = transfer(b, input, errors);
        }
    }

    // Loop annotations.
    let dom = Dominators::new(&cfg);
    let forest = LoopForest::new(func, &cfg, &dom);
    for l in &forest.loops {
        if l.max_iters.is_none() {
            errors.push(err(
                Some(l.header),
                format!("loop headed at {} lacks a max_iters annotation", l.header),
            ));
        }
    }
}

fn out_of(
    in_assigned: &[Option<Vec<bool>>],
    b: BlockId,
    func: &crate::module::Function,
    transfer: &impl Fn(BlockId, &[bool], &mut Vec<VerifyError>) -> Vec<bool>,
    sink: &mut Vec<VerifyError>,
) -> Option<Vec<bool>> {
    let _ = func;
    in_assigned[b.index()]
        .as_ref()
        .map(|input| transfer(b, input, sink))
}

/// Convenience wrapper returning `Err` with the first violation.
pub fn verify_module_ok(module: &Module) -> Result<(), VerifyError> {
    match verify_module(module).into_iter().next() {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Asserts that a register is a valid parameter index (test helper used
/// by downstream crates).
pub fn is_param(func: &crate::module::Function, r: Reg) -> bool {
    r.index() < func.n_params
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};
    use crate::inst::{BinOp, CmpOp};
    use crate::module::Variable;

    fn check(m: &Module) -> Vec<String> {
        verify_module(m)
            .into_iter()
            .map(|e| e.to_string())
            .collect()
    }

    #[test]
    fn valid_module_passes() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        let l = f.new_block("l");
        let exit = f.new_block("exit");
        f.store_scalar(x, 0);
        f.br(l);
        f.switch_to(l);
        f.set_max_iters(l, 4);
        let v = f.load_scalar(x);
        let c = f.cmp(CmpOp::SLt, v, 4);
        f.cond_br(c, l, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        assert!(check(&m).is_empty(), "{:?}", check(&m));
        assert!(verify_module_ok(&m).is_ok());
    }

    #[test]
    fn missing_loop_annotation_flagged() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = FunctionBuilder::new("main", 0);
        let l = f.new_block("l");
        let exit = f.new_block("exit");
        f.br(l);
        f.switch_to(l);
        let c = f.copy(1);
        f.cond_br(c, l, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let errs = check(&m);
        assert!(errs.iter().any(|e| e.contains("max_iters")), "{errs:?}");
    }

    #[test]
    fn read_before_assignment_flagged() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = FunctionBuilder::new("main", 0);
        // r5 used without ever being defined.
        let r5 = Reg(5);
        let c = f.copy(1);
        let _sum = f.bin(BinOp::Add, c, r5);
        f.ret(None);
        let mut func = f.finish();
        func.n_regs = 6;
        let main = mb.func(func);
        let m = mb.finish(main);
        let errs = check(&m);
        assert!(
            errs.iter().any(|e| e.contains("before assignment")),
            "{errs:?}"
        );
    }

    #[test]
    fn assignment_on_one_branch_only_is_flagged() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = FunctionBuilder::new("main", 0);
        let t = f.new_block("t");
        let join = f.new_block("join");
        let c = f.copy(1);
        f.cond_br(c, t, join);
        f.switch_to(t);
        let _defined_only_here = f.copy(7); // r1
        f.br(join);
        f.switch_to(join);
        f.ret(Some(Operand::Reg(Reg(1))));
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let errs = check(&m);
        assert!(
            errs.iter().any(|e| e.contains("before assignment")),
            "{errs:?}"
        );
    }

    #[test]
    fn params_start_assigned() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = FunctionBuilder::new("f", 2);
        let s = f.bin(BinOp::Add, Reg(0), Reg(1));
        f.ret(Some(s.into()));
        let _f = mb.func(f.finish());
        let mut fm = FunctionBuilder::new("main", 0);
        let r = fm.call(_f, vec![Operand::Imm(1), Operand::Imm(2)]);
        fm.ret(Some(r.into()));
        let main = mb.func(fm.finish());
        let m = mb.finish(main);
        assert!(check(&m).is_empty(), "{:?}", check(&m));
    }

    #[test]
    fn call_arity_mismatch_flagged() {
        let mut mb = ModuleBuilder::new("m");
        let mut leaf = FunctionBuilder::new("leaf", 2);
        leaf.ret(None);
        let leaf = mb.func(leaf.finish());
        let mut f = FunctionBuilder::new("main", 0);
        f.call_void(leaf, vec![Operand::Imm(1)]); // expects 2
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let errs = check(&m);
        assert!(errs.iter().any(|e| e.contains("passes 1 args")), "{errs:?}");
    }

    #[test]
    fn constant_index_bounds_flagged() {
        let mut mb = ModuleBuilder::new("m");
        let a = mb.var(Variable::array("a", 4));
        let mut f = FunctionBuilder::new("main", 0);
        let _ = f.load_idx(a, 4); // out of bounds
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let errs = check(&m);
        assert!(errs.iter().any(|e| e.contains("out of bounds")), "{errs:?}");
    }

    #[test]
    fn entry_with_params_flagged() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = FunctionBuilder::new("main", 1);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let errs = check(&m);
        assert!(errs.iter().any(|e| e.contains("no parameters")), "{errs:?}");
    }

    #[test]
    fn recursion_flagged() {
        let mut mb = ModuleBuilder::new("m");
        let fid = FuncId(0);
        let mut f = FunctionBuilder::new("main", 0);
        f.call_void(fid, vec![]);
        f.ret(None);
        mb.func(f.finish());
        let m = mb.finish(fid);
        let errs = check(&m);
        assert!(errs.iter().any(|e| e.contains("recursive")), "{errs:?}");
    }

    #[test]
    fn duplicate_names_flagged() {
        let mut m = Module::new("m");
        m.add_var(Variable::scalar("x"));
        m.add_var(Variable::scalar("x"));
        let errs = check(&m);
        assert!(errs.iter().any(|e| e.contains("duplicate variable")));
    }

    #[test]
    fn zero_period_condcheckpoint_flagged() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = FunctionBuilder::new("main", 0);
        f.ret(None);
        let mut func = f.finish();
        func.blocks[0].insts.push(Inst::CondCheckpoint {
            id: crate::ids::CheckpointId(0),
            period: 0,
        });
        let main = mb.func(func);
        let m = mb.finish(main);
        let errs = check(&m);
        assert!(errs.iter().any(|e| e.contains("period")), "{errs:?}");
    }
}
