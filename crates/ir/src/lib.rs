//! # schematic-ir
//!
//! Intermediate representation and program analyses for the SCHEMATIC
//! reproduction (CGO 2024: *Compile-Time Checkpoint Placement and Memory
//! Allocation for Intermittent Systems*).
//!
//! The paper operates on LLVM IR; this crate provides a self-contained
//! equivalent with exactly the properties the technique consumes:
//!
//! * a register-machine IR in which **every access to a program variable
//!   is an explicit load or store** ([`inst`]) — the unit of the VM/NVM
//!   allocation decision;
//! * control-flow graphs ([`mod@cfg`]), dominators ([`dom`]), natural loops
//!   with `max_iters` annotations ([`loops`]), and the call graph with
//!   bottom-up ordering ([`callgraph`]);
//! * per-block variable access counts ([`access`]) feeding the gain
//!   function, and variable liveness ([`liveness`]) feeding the
//!   save/restore optimization (paper Eq. 2);
//! * execution-path utilities ([`path`]) used by the path-by-path
//!   analysis of §III-A;
//! * a builder API ([`builder`]), a textual format with parser and
//!   printer ([`parser`], [`printer`]), and a verifier ([`verify`]).
//!
//! ## Quick example
//!
//! ```
//! use schematic_ir::parse_module;
//!
//! let m = parse_module(r#"
//! var @x : 1
//! func @main(0) {
//! entry:
//!   r0 = mov 41
//!   r1 = add r0, 1
//!   store @x, r1
//!   ret r1
//! }
//! "#)?;
//! assert!(schematic_ir::verify_module(&m).is_empty());
//! # Ok::<(), schematic_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod access;
pub mod builder;
pub mod callgraph;
pub mod cfg;
pub mod dom;
pub mod dot;
pub mod hash;
pub mod ids;
pub mod inst;
pub mod liveness;
pub mod loops;
pub mod module;
pub mod parser;
pub mod path;
pub mod printer;
pub mod varset;
pub mod verify;

pub use access::{module_written_vars, AccessCount, AccessMap};
pub use builder::{FunctionBuilder, ModuleBuilder};
pub use callgraph::{CallGraph, RecursionError};
pub use cfg::Cfg;
pub use dom::Dominators;
pub use hash::{hash_module, Digest, StableHasher};
pub use ids::{BlockId, CheckpointId, FuncId, Reg, VarId};
pub use inst::{AccessKind, BinOp, CmpOp, Inst, Operand, Terminator, UnOp};
pub use liveness::{call_effects, CallEffect, VarLiveness};
pub use loops::{Loop, LoopForest};
pub use module::{Block, Edge, Function, Module, Variable, WORD_BYTES};
pub use parser::{parse_module, ParseError};
pub use path::{enumerate_paths, paths_from_trace, Path};
pub use printer::print_module;
pub use varset::VarSet;
pub use verify::{verify_module, verify_module_ok, VerifyError};
