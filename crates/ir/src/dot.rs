//! Graphviz (DOT) export of control-flow graphs.
//!
//! Handy when debugging placements: render a function's CFG with its
//! loop structure, or an entire module, and inspect where checkpoint
//! blocks landed.
//!
//! ```
//! use schematic_ir::{parse_module, dot::function_to_dot};
//!
//! let m = parse_module("func @main(0) {\nentry:\n  ret\n}").unwrap();
//! let dot = function_to_dot(&m, schematic_ir::FuncId(0));
//! assert!(dot.starts_with("digraph"));
//! ```

use crate::cfg::Cfg;
use crate::ids::FuncId;
use crate::inst::{Inst, Terminator};
use crate::module::Module;
use std::fmt::Write;

/// Renders one function's CFG as a DOT digraph.
///
/// Blocks containing checkpoint intrinsics are highlighted; loop
/// headers get a double border; edge labels show branch polarity.
pub fn function_to_dot(module: &Module, fid: FuncId) -> String {
    let func = module.func(fid);
    let cfg = Cfg::new(func);
    let forest = crate::loops::LoopForest::of(func);
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(&func.name));
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    let _ = writeln!(out, "  label=\"{}\";", func.name);

    for (bid, block) in func.iter_blocks() {
        let name = block.name.clone().unwrap_or_else(|| format!("bb{}", bid.0));
        let mut attrs = Vec::new();
        let has_cp = block.insts.iter().any(Inst::is_checkpoint);
        if has_cp {
            attrs.push("style=filled".to_string());
            attrs.push("fillcolor=lightblue".to_string());
        }
        if forest.loops.iter().any(|l| l.header == bid) {
            attrs.push("peripheries=2".to_string());
        }
        let summary = block_summary(module, block);
        attrs.push(format!(
            "label=\"{name}\\n{} inst{}{summary}\"",
            block.insts.len(),
            if block.insts.len() == 1 { "" } else { "s" },
        ));
        let _ = writeln!(out, "  {bid} [{}];", attrs.join(", "));
    }
    for (bid, block) in func.iter_blocks() {
        match &block.term {
            Terminator::Br(t) => {
                let _ = writeln!(out, "  {bid} -> {t};");
            }
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                let _ = writeln!(out, "  {bid} -> {then_bb} [label=\"T\"];");
                let _ = writeln!(out, "  {bid} -> {else_bb} [label=\"F\"];");
            }
            Terminator::Ret(_) => {}
        }
        let _ = &cfg; // cfg retained for future edge classification
    }
    out.push_str("}\n");
    out
}

/// Renders every function of a module as one DOT file with clustered
/// subgraphs.
pub fn module_to_dot(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(&module.name));
    for (fid, func) in module.iter_funcs() {
        let inner = function_to_dot(module, fid);
        // Re-wrap as a cluster: strip the digraph header/footer and
        // prefix node ids with the function id to keep them unique.
        let body: String = inner
            .lines()
            .skip(2)
            .take_while(|l| *l != "}")
            .map(|l| l.replace("bb", &format!("f{}_bb", fid.0)))
            .fold(String::new(), |mut acc, l| {
                acc.push_str("  ");
                acc.push_str(&l);
                acc.push('\n');
                acc
            });
        let _ = writeln!(out, "  subgraph cluster_{} {{", fid.0);
        let _ = writeln!(out, "    label=\"@{}\";", func.name);
        out.push_str(&body);
        let _ = writeln!(out, "  }}");
    }
    out.push_str("}\n");
    out
}

fn block_summary(module: &Module, block: &crate::module::Block) -> String {
    let mut cps = Vec::new();
    for inst in &block.insts {
        match inst {
            Inst::Checkpoint { id } => cps.push(format!("\\n[checkpoint {}]", id.0)),
            Inst::CondCheckpoint { id, period } => {
                cps.push(format!("\\n[condcheckpoint {} /{}]", id.0, period))
            }
            _ => {}
        }
    }
    let _ = module;
    cps.concat()
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) || cleaned.is_empty() {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};
    use crate::inst::CmpOp;

    fn looped_module() -> Module {
        let mut mb = ModuleBuilder::new("dot test");
        let mut f = FunctionBuilder::new("main", 0);
        let h = f.new_block("h");
        let b = f.new_block("b");
        let exit = f.new_block("exit");
        let i = f.copy(0);
        f.br(h);
        f.switch_to(h);
        f.set_max_iters(h, 4);
        let c = f.cmp(CmpOp::SGe, i, 3);
        f.cond_br(c, exit, b);
        f.switch_to(b);
        f.br(h);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    #[test]
    fn function_dot_structure() {
        let m = looped_module();
        let dot = function_to_dot(&m, FuncId(0));
        assert!(dot.starts_with("digraph main {"));
        assert!(dot.contains("bb0 ["));
        assert!(dot.contains("bb1 -> bb3 [label=\"T\"]"));
        assert!(dot.contains("bb1 -> bb2 [label=\"F\"]"));
        // Loop header double border.
        assert!(dot.contains("peripheries=2"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn checkpoint_blocks_highlighted() {
        let mut m = looped_module();
        m.funcs[0].blocks[2].insts.push(Inst::Checkpoint {
            id: crate::ids::CheckpointId(0),
        });
        let dot = function_to_dot(&m, FuncId(0));
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("[checkpoint 0]"));
    }

    #[test]
    fn module_dot_clusters_functions() {
        let m = looped_module();
        let dot = module_to_dot(&m);
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("label=\"@main\""));
        assert!(dot.contains("f0_bb1"));
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("ok_name1"), "ok_name1");
        assert_eq!(sanitize("dot test"), "dot_test");
        assert_eq!(sanitize("1abc"), "g_1abc");
        assert_eq!(sanitize(""), "g_");
    }
}
