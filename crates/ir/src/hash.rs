//! Stable structural hashing of IR.
//!
//! Content-addressed caching of evaluation results needs a digest of the
//! program that is a pure function of its *structure*: two compiles of
//! the same source must produce the same digest in any process, on any
//! host, regardless of `HashMap` iteration order, allocation addresses
//! or build flags. [`StableHasher`] is a two-lane incremental mixer over
//! explicit visitation order (SplitMix64 finalizers per lane, distinct
//! seeds), producing a 128-bit [`Digest`]; [`hash_module`] is the
//! canonical visitor over a [`Module`].
//!
//! What the module digest covers (and what it deliberately ignores):
//!
//! * **Covered:** variable shapes (size, init contents, NVM pinning),
//!   function signatures (`n_params`, `n_regs`, entry block), every
//!   instruction and terminator with full operand structure, the
//!   designated entry function, and loop-bound annotations
//!   (`max_iters`, visited in sorted key order — never map order).
//! * **Ignored:** module/function/block/variable *names*. They are
//!   diagnostics; two α-renamed programs behave identically, so they
//!   hash identically. Anything that changes behavior changes some
//!   covered field.
//!
//! Every variant tag and field is written with a domain-separating tag
//! byte so that adjacent fields cannot alias across variants (e.g. a
//! `Copy` of immediate 3 never collides with a `Un`-`Neg` of register 3).

use crate::ids::{BlockId, FuncId};
use crate::inst::{Inst, Operand, Terminator};
use crate::module::{Block, Function, Module, Variable};
use crate::varset::VarSet;
use std::fmt;

/// A 128-bit structural digest, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest {
    /// High 64 bits (lane A).
    pub hi: u64,
    /// Low 64 bits (lane B).
    pub lo: u64,
}

impl Digest {
    /// Renders the digest as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses a digest rendered by [`Digest::to_hex`].
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Digest { hi, lo })
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mixing step.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Incremental structural hasher: feed words/bytes in a canonical
/// visitation order, then [`finish`](StableHasher::finish).
///
/// Two independently seeded lanes are mixed per input word; collisions
/// would have to hold in both simultaneously, which makes the 128-bit
/// digest safe for content addressing at any realistic cache size.
#[derive(Debug, Clone)]
pub struct StableHasher {
    a: u64,
    b: u64,
    /// Total words absorbed; folded in at `finish` so that absorbing a
    /// trailing zero word differs from absorbing nothing.
    n: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Creates a hasher with the canonical seeds.
    pub fn new() -> Self {
        StableHasher {
            a: 0x243F_6A88_85A3_08D3, // π fraction
            b: 0x1319_8A2E_0370_7344,
            n: 0,
        }
    }

    /// Absorbs one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        self.a = mix(self.a ^ w);
        self.b = mix(self.b.rotate_left(17) ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.n = self.n.wrapping_add(1);
    }

    /// Absorbs a domain-separating tag byte (variant discriminants,
    /// field markers).
    #[inline]
    pub fn write_tag(&mut self, t: u8) {
        self.write_u64(0x7461_6700_0000_0000 | u64::from(t)); // "tag\0"-prefixed
    }

    /// Absorbs a `usize` (canonicalized to 64 bits).
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `i32` (sign-extended so `-1` and `u32::MAX` coincide
    /// deliberately: the IR is 32-bit two's-complement throughout).
    #[inline]
    pub fn write_i32(&mut self, v: i32) {
        self.write_u64(v as i64 as u64);
    }

    /// Absorbs a boolean.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(u64::from(v));
    }

    /// Absorbs an `f64` by bit pattern (placement thresholds; NaN
    /// payloads are preserved, `0.0` and `-0.0` differ — bitwise
    /// identity is exactly reproducible-compile identity).
    #[inline]
    pub fn write_f64_bits(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a byte string, length-prefixed so concatenations cannot
    /// alias (`"ab","c"` vs `"a","bc"`).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
    }

    /// Absorbs a UTF-8 string (length-prefixed bytes).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Absorbs a variable set as its sorted member ids (set semantics:
    /// insertion order and backing capacity never matter).
    pub fn write_varset(&mut self, set: &VarSet) {
        self.write_u64(set.len() as u64);
        for v in set.iter() {
            self.write_u64(u64::from(v.0));
        }
    }

    /// Finalizes the digest.
    pub fn finish(&self) -> Digest {
        let hi = mix(self.a ^ mix(self.n));
        let lo = mix(self.b ^ mix(self.n ^ 0xA5A5_A5A5_A5A5_A5A5));
        Digest { hi, lo }
    }
}

// Tag bytes. Grouped by domain; values are arbitrary but frozen —
// changing one changes every digest (a deliberate cache flush).
const T_MODULE: u8 = 0x01;
const T_VAR: u8 = 0x02;
const T_FUNC: u8 = 0x03;
const T_BLOCK: u8 = 0x04;
const T_MAX_ITERS: u8 = 0x05;

const T_OP_REG: u8 = 0x10;
const T_OP_IMM: u8 = 0x11;
const T_NONE: u8 = 0x12;
const T_SOME: u8 = 0x13;

const T_BIN: u8 = 0x20;
const T_CMP: u8 = 0x21;
const T_UN: u8 = 0x22;
const T_COPY: u8 = 0x23;
const T_SELECT: u8 = 0x24;
const T_LOAD: u8 = 0x25;
const T_STORE: u8 = 0x26;
const T_CALL: u8 = 0x27;
const T_CHECKPOINT: u8 = 0x28;
const T_COND_CHECKPOINT: u8 = 0x29;
const T_SAVE_VAR: u8 = 0x2A;
const T_RESTORE_VAR: u8 = 0x2B;

const T_BR: u8 = 0x30;
const T_COND_BR: u8 = 0x31;
const T_RET: u8 = 0x32;

fn hash_operand(h: &mut StableHasher, op: Operand) {
    match op {
        Operand::Reg(r) => {
            h.write_tag(T_OP_REG);
            h.write_u64(u64::from(r.0));
        }
        Operand::Imm(v) => {
            h.write_tag(T_OP_IMM);
            h.write_i32(v);
        }
    }
}

fn hash_opt_operand(h: &mut StableHasher, op: Option<Operand>) {
    match op {
        None => h.write_tag(T_NONE),
        Some(o) => {
            h.write_tag(T_SOME);
            hash_operand(h, o);
        }
    }
}

/// Hashes one instruction into `h` (exhaustive over [`Inst`]; adding a
/// variant without extending this is a compile error).
pub fn hash_inst(h: &mut StableHasher, inst: &Inst) {
    match inst {
        Inst::Bin { dst, op, lhs, rhs } => {
            h.write_tag(T_BIN);
            h.write_u64(u64::from(dst.0));
            h.write_str(op.mnemonic());
            hash_operand(h, *lhs);
            hash_operand(h, *rhs);
        }
        Inst::Cmp { dst, op, lhs, rhs } => {
            h.write_tag(T_CMP);
            h.write_u64(u64::from(dst.0));
            h.write_str(op.mnemonic());
            hash_operand(h, *lhs);
            hash_operand(h, *rhs);
        }
        Inst::Un { dst, op, src } => {
            h.write_tag(T_UN);
            h.write_u64(u64::from(dst.0));
            h.write_str(op.mnemonic());
            hash_operand(h, *src);
        }
        Inst::Copy { dst, src } => {
            h.write_tag(T_COPY);
            h.write_u64(u64::from(dst.0));
            hash_operand(h, *src);
        }
        Inst::Select {
            dst,
            cond,
            then_val,
            else_val,
        } => {
            h.write_tag(T_SELECT);
            h.write_u64(u64::from(dst.0));
            hash_operand(h, *cond);
            hash_operand(h, *then_val);
            hash_operand(h, *else_val);
        }
        Inst::Load { dst, var, idx } => {
            h.write_tag(T_LOAD);
            h.write_u64(u64::from(dst.0));
            h.write_u64(u64::from(var.0));
            hash_opt_operand(h, *idx);
        }
        Inst::Store { var, idx, src } => {
            h.write_tag(T_STORE);
            h.write_u64(u64::from(var.0));
            hash_opt_operand(h, *idx);
            hash_operand(h, *src);
        }
        Inst::Call { dst, func, args } => {
            h.write_tag(T_CALL);
            match dst {
                None => h.write_tag(T_NONE),
                Some(r) => {
                    h.write_tag(T_SOME);
                    h.write_u64(u64::from(r.0));
                }
            }
            h.write_u64(u64::from(func.0));
            h.write_u64(args.len() as u64);
            for a in args {
                hash_operand(h, *a);
            }
        }
        Inst::Checkpoint { id } => {
            h.write_tag(T_CHECKPOINT);
            h.write_u64(u64::from(id.0));
        }
        Inst::CondCheckpoint { id, period } => {
            h.write_tag(T_COND_CHECKPOINT);
            h.write_u64(u64::from(id.0));
            h.write_u64(u64::from(*period));
        }
        Inst::SaveVar { var } => {
            h.write_tag(T_SAVE_VAR);
            h.write_u64(u64::from(var.0));
        }
        Inst::RestoreVar { var } => {
            h.write_tag(T_RESTORE_VAR);
            h.write_u64(u64::from(var.0));
        }
    }
}

/// Hashes one terminator into `h`.
pub fn hash_terminator(h: &mut StableHasher, term: &Terminator) {
    match term {
        Terminator::Br(t) => {
            h.write_tag(T_BR);
            h.write_u64(u64::from(t.0));
        }
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => {
            h.write_tag(T_COND_BR);
            hash_operand(h, *cond);
            h.write_u64(u64::from(then_bb.0));
            h.write_u64(u64::from(else_bb.0));
        }
        Terminator::Ret(v) => {
            h.write_tag(T_RET);
            hash_opt_operand(h, *v);
        }
    }
}

fn hash_variable(h: &mut StableHasher, v: &Variable) {
    h.write_tag(T_VAR);
    h.write_usize(v.words);
    h.write_u64(v.init.len() as u64);
    for &w in &v.init {
        h.write_i32(w);
    }
    h.write_bool(v.pinned_nvm);
}

fn hash_block(h: &mut StableHasher, b: &Block) {
    h.write_tag(T_BLOCK);
    h.write_u64(b.insts.len() as u64);
    for inst in &b.insts {
        hash_inst(h, inst);
    }
    hash_terminator(h, &b.term);
}

fn hash_function(h: &mut StableHasher, f: &Function) {
    h.write_tag(T_FUNC);
    h.write_usize(f.n_params);
    h.write_usize(f.n_regs);
    h.write_u64(u64::from(f.entry.0));
    h.write_u64(f.blocks.len() as u64);
    for b in &f.blocks {
        hash_block(h, b);
    }
    // `max_iters` is a HashMap — visit in sorted key order so the
    // digest never depends on hash-map iteration order.
    h.write_tag(T_MAX_ITERS);
    let mut bounds: Vec<(BlockId, u64)> = f.max_iters.iter().map(|(&b, &n)| (b, n)).collect();
    bounds.sort_unstable();
    h.write_u64(bounds.len() as u64);
    for (b, n) in bounds {
        h.write_u64(u64::from(b.0));
        h.write_u64(n);
    }
}

/// Feeds a whole module into an existing hasher (for callers composing
/// larger digests, e.g. instrumented programs).
pub fn hash_module_into(h: &mut StableHasher, m: &Module) {
    h.write_tag(T_MODULE);
    h.write_u64(m.vars.len() as u64);
    for v in &m.vars {
        hash_variable(h, v);
    }
    h.write_u64(m.funcs.len() as u64);
    for f in &m.funcs {
        hash_function(h, f);
    }
    match m.entry {
        None => h.write_tag(T_NONE),
        Some(FuncId(i)) => {
            h.write_tag(T_SOME);
            h.write_u64(u64::from(i));
        }
    }
}

/// The stable structural digest of a module. Deterministic across
/// processes and hosts; changes whenever any covered field changes (see
/// the module docs for coverage).
pub fn hash_module(m: &Module) -> Digest {
    let mut h = StableHasher::new();
    hash_module_into(&mut h, m);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};
    use crate::inst::BinOp;

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x").with_init(vec![7]));
        let mut f = FunctionBuilder::new("main", 0);
        let a = f.load_scalar(x);
        let b = f.bin(BinOp::Add, a, 1);
        f.store_scalar(x, b);
        f.ret(Some(b.into()));
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(hash_module(&sample()), hash_module(&sample()));
    }

    #[test]
    fn names_do_not_affect_digest() {
        let mut a = sample();
        a.name = "other".into();
        a.vars[0].name = "renamed".into();
        a.funcs[0].name = "entry2".into();
        a.funcs[0].blocks[0].name = Some("lbl".into());
        assert_eq!(hash_module(&a), hash_module(&sample()));
    }

    #[test]
    fn instruction_edit_changes_digest() {
        let mut m = sample();
        let Inst::Bin { rhs, .. } = &mut m.funcs[0].blocks[0].insts[1] else {
            panic!("expected bin");
        };
        *rhs = Operand::Imm(2);
        assert_ne!(hash_module(&m), hash_module(&sample()));
    }

    #[test]
    fn init_and_pinning_change_digest() {
        let mut m = sample();
        m.vars[0].init = vec![8];
        assert_ne!(hash_module(&m), hash_module(&sample()));
        let mut m2 = sample();
        m2.vars[0].pinned_nvm = true;
        assert_ne!(hash_module(&m2), hash_module(&sample()));
    }

    #[test]
    fn max_iters_is_order_independent() {
        let mut a = sample();
        let mut b = sample();
        for i in 0..32 {
            a.funcs[0].max_iters.insert(BlockId(i), u64::from(i) + 1);
        }
        for i in (0..32).rev() {
            b.funcs[0].max_iters.insert(BlockId(i), u64::from(i) + 1);
        }
        assert_eq!(hash_module(&a), hash_module(&b));
        b.funcs[0].max_iters.insert(BlockId(5), 99);
        assert_ne!(hash_module(&a), hash_module(&b));
    }

    #[test]
    fn hex_roundtrip() {
        let d = hash_module(&sample());
        let hex = d.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Digest::from_hex(&hex), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&hex[1..]), None);
    }

    #[test]
    fn write_bytes_is_prefix_free() {
        let mut h1 = StableHasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = StableHasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn empty_and_zero_differ() {
        let h1 = StableHasher::new();
        let mut h2 = StableHasher::new();
        h2.write_u64(0);
        assert_ne!(h1.finish(), h2.finish());
    }
}
