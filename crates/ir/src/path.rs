//! Execution paths over a CFG.
//!
//! SCHEMATIC analyzes one path at a time (§III-A): an ordered sequence of
//! basic blocks from a region entry to a region exit. Profiled paths come
//! from emulator traces; never-executed code is covered by paths
//! enumerated structurally from the CFG (§III-A.3).

use crate::cfg::Cfg;
use crate::ids::BlockId;
use crate::module::Edge;

/// An ordered, non-empty sequence of basic blocks connected by CFG edges.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    blocks: Vec<BlockId>,
}

impl Path {
    /// Creates a path from blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn new(blocks: Vec<BlockId>) -> Self {
        assert!(!blocks.is_empty(), "a path has at least one block");
        Path { blocks }
    }

    /// The blocks of the path, in execution order.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `false` always (paths are non-empty); provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First block.
    pub fn first(&self) -> BlockId {
        self.blocks[0]
    }

    /// Last block.
    pub fn last(&self) -> BlockId {
        *self.blocks.last().expect("non-empty")
    }

    /// The consecutive edges of the path — SCHEMATIC's potential
    /// checkpoint locations along this path.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.blocks.windows(2).map(|w| Edge::new(w[0], w[1]))
    }

    /// Checks that every consecutive pair is a CFG edge.
    pub fn is_valid(&self, cfg: &Cfg) -> bool {
        self.edges().all(|e| cfg.has_edge(e.from, e.to))
    }

    /// The sub-slice of blocks strictly between edge positions `i` and
    /// `j` of this path, where position `i` refers to the edge after
    /// `blocks[i]`. Used to collect the blocks of an RCG interval.
    pub fn interval(&self, from_edge: usize, to_edge: usize) -> &[BlockId] {
        &self.blocks[from_edge + 1..=to_edge]
    }
}

impl FromIterator<BlockId> for Path {
    fn from_iter<T: IntoIterator<Item = BlockId>>(iter: T) -> Self {
        Path::new(iter.into_iter().collect())
    }
}

/// Enumerates up to `limit` acyclic paths from `start` to any block
/// satisfying `is_exit`, restricted to blocks for which `in_region`
/// returns `true`.
///
/// Cycles are avoided by never revisiting a block already on the current
/// path, so in a region whose back-edges are excluded (how SCHEMATIC
/// analyzes loop bodies) this enumerates genuine execution paths.
pub fn enumerate_paths(
    cfg: &Cfg,
    start: BlockId,
    is_exit: impl Fn(BlockId) -> bool,
    in_region: impl Fn(BlockId) -> bool,
    allow_edge: impl Fn(BlockId, BlockId) -> bool,
    limit: usize,
) -> Vec<Path> {
    let mut result = Vec::new();
    if !in_region(start) || limit == 0 {
        return result;
    }
    let mut on_path = vec![false; cfg.len()];
    let mut current = vec![start];
    on_path[start.index()] = true;
    // Iterative DFS over (block, next successor index).
    let mut stack: Vec<(BlockId, usize)> = vec![(start, 0)];
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        if *next == 0 && is_exit(b) {
            result.push(Path::new(current.clone()));
            if result.len() >= limit {
                return result;
            }
        }
        let succs = cfg.succs(b);
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if in_region(s) && !on_path[s.index()] && allow_edge(b, s) {
                on_path[s.index()] = true;
                current.push(s);
                stack.push((s, 0));
            }
        } else {
            stack.pop();
            current.pop();
            on_path[b.index()] = false;
        }
    }
    result
}

/// Extracts maximal per-function paths from a flat block trace.
///
/// A trace is the sequence of blocks executed by one emulator run of a
/// single function. The trace is cut at back-edges (`allow_edge`
/// returning `false`) so each resulting path is acyclic, matching the
/// path shape SCHEMATIC analyzes.
pub fn paths_from_trace(
    trace: &[BlockId],
    allow_edge: impl Fn(BlockId, BlockId) -> bool,
) -> Vec<Path> {
    let mut paths = Vec::new();
    let mut cur: Vec<BlockId> = Vec::new();
    for &b in trace {
        if let Some(&prev) = cur.last() {
            if !allow_edge(prev, b) || cur.contains(&b) {
                paths.push(Path::new(std::mem::take(&mut cur)));
            }
        }
        cur.push(b);
    }
    if !cur.is_empty() {
        paths.push(Path::new(cur));
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CmpOp;
    use crate::Reg;

    fn diamond_cfg() -> Cfg {
        let mut f = FunctionBuilder::new("f", 1);
        let t = f.new_block("t");
        let e = f.new_block("e");
        let join = f.new_block("join");
        let c = f.cmp(CmpOp::SGt, Reg(0), 0);
        f.cond_br(c, t, e);
        f.switch_to(t);
        f.br(join);
        f.switch_to(e);
        f.br(join);
        f.switch_to(join);
        f.ret(None);
        Cfg::new(&f.finish())
    }

    #[test]
    fn path_edges_and_validity() {
        let cfg = diamond_cfg();
        let p = Path::new(vec![BlockId(0), BlockId(1), BlockId(3)]);
        assert!(p.is_valid(&cfg));
        let edges: Vec<_> = p.edges().collect();
        assert_eq!(
            edges,
            vec![
                Edge::new(BlockId(0), BlockId(1)),
                Edge::new(BlockId(1), BlockId(3))
            ]
        );
        assert_eq!(p.first(), BlockId(0));
        assert_eq!(p.last(), BlockId(3));
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());

        let bad = Path::new(vec![BlockId(1), BlockId(2)]);
        assert!(!bad.is_valid(&cfg));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_path_panics() {
        let _ = Path::new(vec![]);
    }

    #[test]
    fn interval_selects_blocks_between_edges() {
        let p = Path::new(vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)]);
        // Edge 0 is 0->1, edge 2 is 2->3; the interval covers blocks 1, 2.
        assert_eq!(p.interval(0, 2), &[BlockId(1), BlockId(2)]);
    }

    #[test]
    fn enumerate_diamond_paths() {
        let cfg = diamond_cfg();
        let paths = enumerate_paths(
            &cfg,
            BlockId(0),
            |b| b == BlockId(3),
            |_| true,
            |_, _| true,
            10,
        );
        assert_eq!(paths.len(), 2);
        assert!(paths.contains(&Path::new(vec![BlockId(0), BlockId(1), BlockId(3)])));
        assert!(paths.contains(&Path::new(vec![BlockId(0), BlockId(2), BlockId(3)])));
    }

    #[test]
    fn enumerate_respects_limit_and_region() {
        let cfg = diamond_cfg();
        let paths = enumerate_paths(
            &cfg,
            BlockId(0),
            |b| b == BlockId(3),
            |_| true,
            |_, _| true,
            1,
        );
        assert_eq!(paths.len(), 1);
        // Restrict the region to exclude block 1: only the e-branch path.
        let paths = enumerate_paths(
            &cfg,
            BlockId(0),
            |b| b == BlockId(3),
            |b| b != BlockId(1),
            |_, _| true,
            10,
        );
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].blocks()[1], BlockId(2));
    }

    #[test]
    fn enumerate_skips_forbidden_edges() {
        let cfg = diamond_cfg();
        let paths = enumerate_paths(
            &cfg,
            BlockId(0),
            |b| b == BlockId(3),
            |_| true,
            |f, t| !(f == BlockId(0) && t == BlockId(2)),
            10,
        );
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn trace_cut_at_back_edges() {
        // Simulated trace: entry, header, body, header, body, header, exit
        let h = BlockId(1);
        let b = BlockId(2);
        let trace = vec![BlockId(0), h, b, h, b, h, BlockId(3)];
        let paths = paths_from_trace(&trace, |from, to| !(from == b && to == h));
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].blocks(), &[BlockId(0), h, b]);
        assert_eq!(paths[1].blocks(), &[h, b]);
        assert_eq!(paths[2].blocks(), &[h, BlockId(3)]);
    }

    #[test]
    fn trace_cut_on_repeat_even_without_back_edge_marking() {
        let trace = vec![BlockId(0), BlockId(1), BlockId(0), BlockId(2)];
        let paths = paths_from_trace(&trace, |_, _| true);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].blocks(), &[BlockId(0), BlockId(1)]);
        assert_eq!(paths[1].blocks(), &[BlockId(0), BlockId(2)]);
    }
}
