//! Ergonomic construction of IR modules and functions.
//!
//! [`FunctionBuilder`] keeps a *current block* cursor; instruction-emitting
//! methods append to it and return the destination register. Blocks are
//! created up front with [`FunctionBuilder::new_block`] so that forward
//! branches can be emitted naturally.
//!
//! ```
//! use schematic_ir::builder::{FunctionBuilder, ModuleBuilder};
//! use schematic_ir::{BinOp, CmpOp, Operand, Variable};
//!
//! let mut mb = ModuleBuilder::new("sum");
//! let arr = mb.var(Variable::array("array", 8).with_init((1..=8).collect()));
//! let sum = mb.var(Variable::scalar("sum"));
//!
//! let mut f = FunctionBuilder::new("main", 0);
//! let entry = f.entry_block();
//! let loop_bb = f.new_block("loop");
//! let body = f.new_block("body");
//! let exit = f.new_block("exit");
//!
//! f.switch_to(entry);
//! let i = f.copy(0);
//! let acc = f.copy(0);
//! f.store_scalar(sum, acc);
//! f.br(loop_bb);
//!
//! f.switch_to(loop_bb);
//! let done = f.cmp(CmpOp::SGe, i, 8);
//! f.cond_br(done, exit, body);
//! f.set_max_iters(loop_bb, 9);
//!
//! f.switch_to(body);
//! let x = f.load_idx(arr, i);
//! let acc2 = f.load_scalar(sum);
//! let acc3 = f.bin(BinOp::Add, acc2, x);
//! f.store_scalar(sum, acc3);
//! let i2 = f.bin(BinOp::Add, i, 1);
//! f.copy_to(i, i2);
//! f.br(loop_bb);
//!
//! f.switch_to(exit);
//! let result = f.load_scalar(sum);
//! f.ret(Some(result.into()));
//!
//! let main = mb.func(f.finish());
//! let module = mb.finish(main);
//! assert_eq!(module.funcs.len(), 1);
//! ```

use crate::ids::{BlockId, FuncId, Reg, VarId};
use crate::inst::{BinOp, CmpOp, Inst, Operand, Terminator, UnOp};
use crate::module::{Block, Function, Module, Variable};
use std::collections::HashMap;

/// Builder for a [`Module`].
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Creates a builder for an empty module named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Adds a variable, returning its id.
    pub fn var(&mut self, var: Variable) -> VarId {
        self.module.add_var(var)
    }

    /// Adds a finished function, returning its id.
    pub fn func(&mut self, func: Function) -> FuncId {
        self.module.add_func(func)
    }

    /// Finalizes the module with `entry` as its entry function.
    pub fn finish(mut self, entry: FuncId) -> Module {
        self.module.entry = Some(entry);
        self.module
    }

    /// Finalizes a module with no designated entry (library of functions).
    pub fn finish_without_entry(self) -> Module {
        self.module
    }
}

/// A value usable as an instruction operand in the builder API: a register,
/// an `i32` immediate, or an [`Operand`].
pub trait IntoOperand {
    /// Converts into an [`Operand`].
    fn into_operand(self) -> Operand;
}

impl IntoOperand for Operand {
    fn into_operand(self) -> Operand {
        self
    }
}

impl IntoOperand for Reg {
    fn into_operand(self) -> Operand {
        Operand::Reg(self)
    }
}

impl IntoOperand for i32 {
    fn into_operand(self) -> Operand {
        Operand::Imm(self)
    }
}

/// Builder for a [`Function`].
///
/// # Panics
///
/// All emitting methods panic if the current block was already terminated,
/// and [`FunctionBuilder::finish`] panics if any block lacks a terminator —
/// both indicate construction bugs that would otherwise surface later as
/// confusing verifier errors.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    n_params: usize,
    n_regs: usize,
    blocks: Vec<Block>,
    terminated: Vec<bool>,
    current: BlockId,
    max_iters: HashMap<BlockId, u64>,
}

impl FunctionBuilder {
    /// Starts a function with `n_params` parameters (bound to registers
    /// `r0..r(n_params-1)`), positioned at a fresh entry block.
    pub fn new(name: impl Into<String>, n_params: usize) -> Self {
        FunctionBuilder {
            name: name.into(),
            n_params,
            n_regs: n_params,
            blocks: vec![Block {
                name: Some("entry".into()),
                insts: Vec::new(),
                term: Terminator::Ret(None), // placeholder until terminated
            }],
            terminated: vec![false],
            current: BlockId(0),
            max_iters: HashMap::new(),
        }
    }

    /// The entry block id.
    pub fn entry_block(&self) -> BlockId {
        BlockId(0)
    }

    /// The parameter registers `r0..r(n_params-1)`.
    pub fn params(&self) -> Vec<Reg> {
        (0..self.n_params).map(Reg::from_usize).collect()
    }

    /// Creates a new labelled block (does not switch to it).
    pub fn new_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::from_usize(self.blocks.len());
        self.blocks.push(Block {
            name: Some(name.into()),
            insts: Vec::new(),
            term: Terminator::Ret(None),
        });
        self.terminated.push(false);
        id
    }

    /// Makes `block` the current insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            !self.terminated[block.index()],
            "block {block} is already terminated"
        );
        self.current = block;
    }

    /// Records the maximum trip count of the loop headed by `header`.
    pub fn set_max_iters(&mut self, header: BlockId, max: u64) {
        self.max_iters.insert(header, max);
    }

    /// Allocates a fresh virtual register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg::from_usize(self.n_regs);
        self.n_regs += 1;
        r
    }

    fn push(&mut self, inst: Inst) {
        let cur = self.current.index();
        assert!(
            !self.terminated[cur],
            "cannot append to terminated block {}",
            self.current
        );
        self.blocks[cur].insts.push(inst);
    }

    /// Emits `dst = op lhs, rhs` into a fresh register.
    pub fn bin(&mut self, op: BinOp, lhs: impl IntoOperand, rhs: impl IntoOperand) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Bin {
            dst,
            op,
            lhs: lhs.into_operand(),
            rhs: rhs.into_operand(),
        });
        dst
    }

    /// Emits `dst = cmp.op lhs, rhs` into a fresh register.
    pub fn cmp(&mut self, op: CmpOp, lhs: impl IntoOperand, rhs: impl IntoOperand) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Cmp {
            dst,
            op,
            lhs: lhs.into_operand(),
            rhs: rhs.into_operand(),
        });
        dst
    }

    /// Emits `dst = op src` into a fresh register.
    pub fn un(&mut self, op: UnOp, src: impl IntoOperand) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Un {
            dst,
            op,
            src: src.into_operand(),
        });
        dst
    }

    /// Emits a copy of `src` into a fresh register.
    pub fn copy(&mut self, src: impl IntoOperand) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Copy {
            dst,
            src: src.into_operand(),
        });
        dst
    }

    /// Emits a copy of `src` into the existing register `dst` (for loop
    /// counters and accumulators that must live in a stable register).
    pub fn copy_to(&mut self, dst: Reg, src: impl IntoOperand) {
        self.push(Inst::Copy {
            dst,
            src: src.into_operand(),
        });
    }

    /// Emits `dst = select cond, a, b` into a fresh register.
    pub fn select(
        &mut self,
        cond: impl IntoOperand,
        then_val: impl IntoOperand,
        else_val: impl IntoOperand,
    ) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Select {
            dst,
            cond: cond.into_operand(),
            then_val: then_val.into_operand(),
            else_val: else_val.into_operand(),
        });
        dst
    }

    /// Emits a scalar load of `var` into a fresh register.
    pub fn load_scalar(&mut self, var: VarId) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Load {
            dst,
            var,
            idx: None,
        });
        dst
    }

    /// Emits an indexed load `var[idx]` into a fresh register.
    pub fn load_idx(&mut self, var: VarId, idx: impl IntoOperand) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Load {
            dst,
            var,
            idx: Some(idx.into_operand()),
        });
        dst
    }

    /// Emits a scalar store `var = src`.
    pub fn store_scalar(&mut self, var: VarId, src: impl IntoOperand) {
        self.push(Inst::Store {
            var,
            idx: None,
            src: src.into_operand(),
        });
    }

    /// Emits an indexed store `var[idx] = src`.
    pub fn store_idx(&mut self, var: VarId, idx: impl IntoOperand, src: impl IntoOperand) {
        self.push(Inst::Store {
            var,
            idx: Some(idx.into_operand()),
            src: src.into_operand(),
        });
    }

    /// Emits a call whose result is discarded.
    pub fn call_void(&mut self, func: FuncId, args: Vec<Operand>) {
        self.push(Inst::Call {
            dst: None,
            func,
            args,
        });
    }

    /// Emits a call and captures the return value in a fresh register.
    pub fn call(&mut self, func: FuncId, args: Vec<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Call {
            dst: Some(dst),
            func,
            args,
        });
        dst
    }

    fn terminate(&mut self, term: Terminator) {
        let cur = self.current.index();
        assert!(
            !self.terminated[cur],
            "block {} terminated twice",
            self.current
        );
        self.blocks[cur].term = term;
        self.terminated[cur] = true;
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.terminate(Terminator::Br(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: impl IntoOperand, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::CondBr {
            cond: cond.into_operand(),
            then_bb,
            else_bb,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Terminator::Ret(value));
    }

    /// Finalizes the function.
    ///
    /// # Panics
    ///
    /// Panics if any block was never terminated.
    pub fn finish(self) -> Function {
        for (i, done) in self.terminated.iter().enumerate() {
            assert!(
                done,
                "block {} ({:?}) in function '{}' was never terminated",
                BlockId::from_usize(i),
                self.blocks[i].name,
                self.name
            );
        }
        Function {
            name: self.name,
            n_params: self.n_params,
            n_regs: self.n_regs,
            blocks: self.blocks,
            entry: BlockId(0),
            max_iters: self.max_iters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_function() {
        let mut f = FunctionBuilder::new("f", 2);
        let p = f.params();
        assert_eq!(p.len(), 2);
        let s = f.bin(BinOp::Add, p[0], p[1]);
        f.ret(Some(s.into()));
        let func = f.finish();
        assert_eq!(func.n_params, 2);
        assert_eq!(func.n_regs, 3);
        assert_eq!(func.blocks.len(), 1);
    }

    #[test]
    fn diamond_cfg() {
        let mut f = FunctionBuilder::new("f", 1);
        let t = f.new_block("t");
        let e = f.new_block("e");
        let join = f.new_block("join");
        let c = f.cmp(CmpOp::SGt, Reg(0), 0);
        f.cond_br(c, t, e);
        f.switch_to(t);
        f.br(join);
        f.switch_to(e);
        f.br(join);
        f.switch_to(join);
        f.ret(None);
        let func = f.finish();
        assert_eq!(func.blocks.len(), 4);
        assert_eq!(func.block_by_name("join"), Some(join));
    }

    #[test]
    #[should_panic(expected = "never terminated")]
    fn unterminated_block_panics() {
        let mut f = FunctionBuilder::new("f", 0);
        let _dangling = f.new_block("dangling");
        f.ret(None);
        let _ = f.finish();
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut f = FunctionBuilder::new("f", 0);
        f.ret(None);
        f.ret(None);
    }

    #[test]
    #[should_panic(expected = "cannot append")]
    fn append_after_terminate_panics() {
        let mut f = FunctionBuilder::new("f", 0);
        f.ret(None);
        let _ = f.copy(1);
    }

    #[test]
    fn module_builder_assembles() {
        let mut mb = ModuleBuilder::new("m");
        let v = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        f.store_scalar(v, 42);
        let r = f.load_scalar(v);
        f.ret(Some(r.into()));
        let fid = mb.func(f.finish());
        let m = mb.finish(fid);
        assert_eq!(m.entry, Some(fid));
        assert_eq!(m.vars.len(), 1);
        assert_eq!(m.funcs[0].inst_count(), 2);
    }

    #[test]
    fn doc_example_compiles() {
        // Mirrors the module-level doc example to keep it honest.
        let mut mb = ModuleBuilder::new("sum");
        let arr = mb.var(Variable::array("array", 8).with_init((1..=8).collect()));
        let sum = mb.var(Variable::scalar("sum"));
        let mut f = FunctionBuilder::new("main", 0);
        let loop_bb = f.new_block("loop");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.copy(0);
        f.store_scalar(sum, 0);
        f.br(loop_bb);
        f.switch_to(loop_bb);
        let done = f.cmp(CmpOp::SGe, i, 8);
        f.cond_br(done, exit, body);
        f.set_max_iters(loop_bb, 9);
        f.switch_to(body);
        let x = f.load_idx(arr, i);
        let acc = f.load_scalar(sum);
        let acc2 = f.bin(BinOp::Add, acc, x);
        f.store_scalar(sum, acc2);
        let i2 = f.bin(BinOp::Add, i, 1);
        f.copy_to(i, i2);
        f.br(loop_bb);
        f.switch_to(exit);
        let r = f.load_scalar(sum);
        f.ret(Some(r.into()));
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        assert_eq!(m.funcs[0].max_iters.get(&loop_bb), Some(&9));
    }
}
