//! Compact bitsets over [`VarId`]s.
//!
//! Allocation maps, liveness sets and gain computations all manipulate
//! sets of variables; a `u64`-chunked bitset keeps those operations cheap
//! even for modules with hundreds of variables.

use crate::ids::VarId;
use std::fmt;

/// A set of variables, backed by a bit vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct VarSet {
    bits: Vec<u64>,
}

impl VarSet {
    /// Creates an empty set sized for `n_vars` variables.
    pub fn new(n_vars: usize) -> Self {
        VarSet {
            bits: vec![0; n_vars.div_ceil(64)],
        }
    }

    /// Creates a set containing every one of the `n_vars` variables.
    pub fn full(n_vars: usize) -> Self {
        let mut s = Self::new(n_vars);
        for i in 0..n_vars {
            s.insert(VarId::from_usize(i));
        }
        s
    }

    /// Creates an empty set with no capacity (grows on insert).
    pub fn empty() -> Self {
        VarSet::default()
    }

    fn grow_for(&mut self, v: VarId) {
        let chunk = v.index() / 64;
        if chunk >= self.bits.len() {
            self.bits.resize(chunk + 1, 0);
        }
    }

    /// Inserts `v`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, v: VarId) -> bool {
        self.grow_for(v);
        let (c, b) = (v.index() / 64, v.index() % 64);
        let was = self.bits[c] & (1 << b) != 0;
        self.bits[c] |= 1 << b;
        !was
    }

    /// Removes `v`; returns `true` if it was present.
    pub fn remove(&mut self, v: VarId) -> bool {
        let (c, b) = (v.index() / 64, v.index() % 64);
        if c >= self.bits.len() {
            return false;
        }
        let was = self.bits[c] & (1 << b) != 0;
        self.bits[c] &= !(1 << b);
        was
    }

    /// Whether `v` is in the set.
    pub fn contains(&self, v: VarId) -> bool {
        let (c, b) = (v.index() / 64, v.index() % 64);
        c < self.bits.len() && self.bits[c] & (1 << b) != 0
    }

    /// Number of variables in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|c| c.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&c| c == 0)
    }

    /// Whether every member of `self` is also in `other`.
    pub fn is_subset(&self, other: &VarSet) -> bool {
        self.bits
            .iter()
            .enumerate()
            .all(|(i, &a)| a & !other.bits.get(i).copied().unwrap_or(0) == 0)
    }

    /// In-place union; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &VarSet) -> bool {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        let mut changed = false;
        for (a, &b) in self.bits.iter_mut().zip(&other.bits) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// In-place difference (`self -= other`).
    pub fn subtract(&mut self, other: &VarSet) {
        for (a, &b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= !b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &VarSet) {
        for (i, a) in self.bits.iter_mut().enumerate() {
            *a &= other.bits.get(i).copied().unwrap_or(0);
        }
    }

    /// Returns the union of two sets.
    pub fn union(&self, other: &VarSet) -> VarSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns the intersection of two sets.
    pub fn intersection(&self, other: &VarSet) -> VarSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        self.bits.iter().enumerate().flat_map(|(c, &chunk)| {
            (0..64)
                .filter(move |b| chunk & (1u64 << b) != 0)
                .map(move |b| VarId::from_usize(c * 64 + b))
        })
    }
}

impl FromIterator<VarId> for VarSet {
    fn from_iter<T: IntoIterator<Item = VarId>>(iter: T) -> Self {
        let mut s = VarSet::empty();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl Extend<VarId> for VarSet {
    fn extend<T: IntoIterator<Item = VarId>>(&mut self, iter: T) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = VarSet::new(4);
        assert!(s.is_empty());
        assert!(s.insert(VarId(2)));
        assert!(!s.insert(VarId(2)));
        assert!(s.contains(VarId(2)));
        assert!(!s.contains(VarId(1)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(VarId(2)));
        assert!(!s.remove(VarId(2)));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut s = VarSet::new(1);
        assert!(s.insert(VarId(200)));
        assert!(s.contains(VarId(200)));
        assert!(!s.contains(VarId(199)));
        assert!(!s.remove(VarId(100_000))); // out of allocated range
    }

    #[test]
    fn set_algebra() {
        let a: VarSet = [VarId(0), VarId(1), VarId(64)].into_iter().collect();
        let b: VarSet = [VarId(1), VarId(2)].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.len(), 4);
        let i = a.intersection(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![VarId(1)]);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![VarId(0), VarId(64)]);
    }

    #[test]
    fn subset_checks() {
        let a: VarSet = [VarId(1), VarId(64)].into_iter().collect();
        let b: VarSet = [VarId(1), VarId(2), VarId(64)].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(VarSet::empty().is_subset(&a));
        assert!(a.is_subset(&a));
        // Differing chunk counts: the longer set's high chunk matters.
        let hi: VarSet = [VarId(200)].into_iter().collect();
        let lo: VarSet = [VarId(1)].into_iter().collect();
        assert!(!hi.is_subset(&lo));
        assert!(lo.is_subset(&lo.union(&hi)));
    }

    #[test]
    fn union_with_reports_change() {
        let mut a: VarSet = [VarId(0)].into_iter().collect();
        let b: VarSet = [VarId(1)].into_iter().collect();
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b)); // no change the second time
    }

    #[test]
    fn full_contains_all() {
        let s = VarSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(VarId(69)));
        assert!(!s.contains(VarId(70)));
    }

    #[test]
    fn iter_is_sorted() {
        let s: VarSet = [VarId(65), VarId(3), VarId(64)].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![VarId(3), VarId(64), VarId(65)]);
    }

    #[test]
    fn debug_shows_members() {
        let s: VarSet = [VarId(1)].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{@v1}");
    }

    #[test]
    fn extend_adds_members() {
        let mut s = VarSet::empty();
        s.extend([VarId(5), VarId(6)]);
        assert_eq!(s.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    //! Property-style tests driven by a tiny in-tree PRNG (`proptest`
    //! cannot be fetched in the offline build environment).
    use super::*;
    use std::collections::BTreeSet;

    /// SplitMix64, local to the tests to keep `schematic-ir` leaf-level.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn ids(&mut self) -> Vec<u32> {
            let n = self.next() % 40;
            (0..n).map(|_| (self.next() % 200) as u32).collect()
        }
    }

    /// VarSet agrees with a BTreeSet model under inserts/removes.
    #[test]
    fn matches_btreeset_model() {
        let mut rng = Rng(11);
        for _ in 0..256 {
            let inserts = rng.ids();
            let removes = rng.ids();
            let mut set = VarSet::empty();
            let mut model = BTreeSet::new();
            for &i in &inserts {
                assert_eq!(set.insert(VarId(i)), model.insert(i));
            }
            for &i in &removes {
                assert_eq!(set.remove(VarId(i)), model.remove(&i));
            }
            assert_eq!(set.len(), model.len());
            let got: Vec<u32> = set.iter().map(|v| v.0).collect();
            let want: Vec<u32> = model.iter().copied().collect();
            assert_eq!(got, want);
        }
    }

    /// Set algebra agrees with the model.
    #[test]
    fn algebra_matches_model() {
        let mut rng = Rng(12);
        for _ in 0..256 {
            let a = rng.ids();
            let b = rng.ids();
            let sa: VarSet = a.iter().map(|&i| VarId(i)).collect();
            let sb: VarSet = b.iter().map(|&i| VarId(i)).collect();
            let ma: BTreeSet<u32> = a.iter().copied().collect();
            let mb: BTreeSet<u32> = b.iter().copied().collect();

            let union: Vec<u32> = sa.union(&sb).iter().map(|v| v.0).collect();
            let munion: Vec<u32> = ma.union(&mb).copied().collect();
            assert_eq!(union, munion);

            let inter: Vec<u32> = sa.intersection(&sb).iter().map(|v| v.0).collect();
            let minter: Vec<u32> = ma.intersection(&mb).copied().collect();
            assert_eq!(inter, minter);

            let mut diff = sa.clone();
            diff.subtract(&sb);
            let got: Vec<u32> = diff.iter().map(|v| v.0).collect();
            let want: Vec<u32> = ma.difference(&mb).copied().collect();
            assert_eq!(got, want);
        }
    }
}
