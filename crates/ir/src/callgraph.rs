//! Call-graph construction, recursion detection, and the bottom-up
//! (reverse-topological) function order used by SCHEMATIC (§III-B.1):
//! every callee is analyzed before its callers, so a callee's checkpoint
//! and allocation decisions can be imposed on all calling contexts.

use crate::ids::FuncId;
use crate::inst::Inst;
use crate::module::Module;

/// The static call graph of a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    /// `callees[f]` lists distinct callees of `f`, in first-call order.
    pub callees: Vec<Vec<FuncId>>,
    /// `callers[f]` lists distinct callers of `f`.
    pub callers: Vec<Vec<FuncId>>,
}

/// Error returned when the program contains (mutual) recursion, which the
/// paper does not support (§III-B.1, footnote 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecursionError {
    /// A function participating in a call cycle.
    pub func: FuncId,
    /// Its name, for diagnostics.
    pub name: String,
}

impl std::fmt::Display for RecursionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recursive call cycle through function '{}' ({})",
            self.name, self.func
        )
    }
}

impl std::error::Error for RecursionError {}

impl CallGraph {
    /// Builds the call graph of `module`.
    pub fn new(module: &Module) -> Self {
        let n = module.funcs.len();
        let mut callees = vec![Vec::new(); n];
        let mut callers = vec![Vec::new(); n];
        for (fid, func) in module.iter_funcs() {
            for block in &func.blocks {
                for inst in &block.insts {
                    if let Inst::Call { func: callee, .. } = inst {
                        if !callees[fid.index()].contains(callee) {
                            callees[fid.index()].push(*callee);
                            callers[callee.index()].push(fid);
                        }
                    }
                }
            }
        }
        CallGraph { callees, callers }
    }

    /// Distinct callees of `f`.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.index()]
    }

    /// Distinct callers of `f`.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        &self.callers[f.index()]
    }

    /// Whether `f` calls no other function.
    pub fn is_leaf(&self, f: FuncId) -> bool {
        self.callees[f.index()].is_empty()
    }

    /// Returns the functions in bottom-up order (callees before callers),
    /// or a [`RecursionError`] if the call graph has a cycle.
    ///
    /// Functions never called and not calling anything appear as well, so
    /// the order is a permutation of all functions.
    pub fn bottom_up_order(&self, module: &Module) -> Result<Vec<FuncId>, RecursionError> {
        let n = self.callees.len();
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Gray,
            Black,
        }
        let mut mark = vec![Mark::White; n];
        let mut order = Vec::with_capacity(n);

        // Iterative DFS emitting postorder (callees first).
        for start in 0..n {
            if mark[start] != Mark::White {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            mark[start] = Mark::Gray;
            while let Some(&mut (f, ref mut next)) = stack.last_mut() {
                let cs = &self.callees[f];
                if *next < cs.len() {
                    let c = cs[*next].index();
                    *next += 1;
                    match mark[c] {
                        Mark::White => {
                            mark[c] = Mark::Gray;
                            stack.push((c, 0));
                        }
                        Mark::Gray => {
                            let fid = FuncId::from_usize(c);
                            return Err(RecursionError {
                                func: fid,
                                name: module.func(fid).name.clone(),
                            });
                        }
                        Mark::Black => {}
                    }
                } else {
                    mark[f] = Mark::Black;
                    order.push(FuncId::from_usize(f));
                    stack.pop();
                }
            }
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};

    fn leaf(name: &str) -> crate::module::Function {
        let mut f = FunctionBuilder::new(name, 0);
        f.ret(Some(crate::inst::Operand::Imm(0)));
        f.finish()
    }

    #[test]
    fn chain_order_is_bottom_up() {
        let mut mb = ModuleBuilder::new("m");
        let c = mb.func(leaf("c"));
        let mut fb = FunctionBuilder::new("b", 0);
        let r = fb.call(c, vec![]);
        fb.ret(Some(r.into()));
        let b = mb.func(fb.finish());
        let mut fa = FunctionBuilder::new("a", 0);
        let r = fa.call(b, vec![]);
        fa.ret(Some(r.into()));
        let a = mb.func(fa.finish());
        let m = mb.finish(a);

        let cg = CallGraph::new(&m);
        assert_eq!(cg.callees(a), &[b]);
        assert_eq!(cg.callers(c), &[b]);
        assert!(cg.is_leaf(c));
        assert!(!cg.is_leaf(a));

        let order = cg.bottom_up_order(&m).unwrap();
        let pos = |f: FuncId| order.iter().position(|&x| x == f).unwrap();
        assert!(pos(c) < pos(b));
        assert!(pos(b) < pos(a));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn direct_recursion_detected() {
        let mut mb = ModuleBuilder::new("m");
        // Build "f" that calls itself: need its id before building, so
        // construct manually with a forward id.
        let fid = FuncId(0);
        let mut fb = FunctionBuilder::new("f", 0);
        let r = fb.call(fid, vec![]);
        fb.ret(Some(r.into()));
        let actual = mb.func(fb.finish());
        assert_eq!(actual, fid);
        let m = mb.finish(fid);
        let cg = CallGraph::new(&m);
        let err = cg.bottom_up_order(&m).unwrap_err();
        assert_eq!(err.func, fid);
        assert!(err.to_string().contains("recursive"));
    }

    #[test]
    fn mutual_recursion_detected() {
        let mut mb = ModuleBuilder::new("m");
        let fid_a = FuncId(0);
        let fid_b = FuncId(1);
        let mut fa = FunctionBuilder::new("a", 0);
        let r = fa.call(fid_b, vec![]);
        fa.ret(Some(r.into()));
        mb.func(fa.finish());
        let mut fb = FunctionBuilder::new("b", 0);
        let r = fb.call(fid_a, vec![]);
        fb.ret(Some(r.into()));
        mb.func(fb.finish());
        let m = mb.finish(fid_a);
        let cg = CallGraph::new(&m);
        assert!(cg.bottom_up_order(&m).is_err());
    }

    #[test]
    fn diamond_call_graph_dedupes_edges() {
        // a calls b twice and c once; b and c call d.
        let mut mb = ModuleBuilder::new("m");
        let d = mb.func(leaf("d"));
        let mut fb = FunctionBuilder::new("b", 0);
        fb.call_void(d, vec![]);
        fb.ret(None);
        let b = mb.func(fb.finish());
        let mut fc = FunctionBuilder::new("c", 0);
        fc.call_void(d, vec![]);
        fc.ret(None);
        let c = mb.func(fc.finish());
        let mut fa = FunctionBuilder::new("a", 0);
        fa.call_void(b, vec![]);
        fa.call_void(b, vec![]);
        fa.call_void(c, vec![]);
        fa.ret(None);
        let a = mb.func(fa.finish());
        let m = mb.finish(a);
        let cg = CallGraph::new(&m);
        assert_eq!(cg.callees(a), &[b, c]); // deduped
        let order = cg.bottom_up_order(&m).unwrap();
        let pos = |f: FuncId| order.iter().position(|&x| x == f).unwrap();
        assert!(pos(d) < pos(b));
        assert!(pos(d) < pos(c));
        assert!(pos(b) < pos(a));
    }

    #[test]
    fn uncalled_function_still_ordered() {
        let mut mb = ModuleBuilder::new("m");
        let main = mb.func(leaf("main"));
        let _orphan = mb.func(leaf("orphan"));
        let m = mb.finish(main);
        let cg = CallGraph::new(&m);
        assert_eq!(cg.bottom_up_order(&m).unwrap().len(), 2);
    }
}
