//! Instruction set of the IR.
//!
//! The IR is a three-address register machine: arithmetic operates on
//! function-local virtual registers ([`Reg`]), while named program variables
//! ([`VarId`]) are accessed exclusively through [`Inst::Load`] and
//! [`Inst::Store`]. This mirrors how SCHEMATIC reasons about programs: the
//! memory-allocation decision (VM vs NVM) applies to variables, and every
//! variable access is visible as a load or store in the instruction stream.
//!
//! Checkpoint intrinsics ([`Inst::Checkpoint`], [`Inst::CondCheckpoint`],
//! [`Inst::SaveVar`], [`Inst::RestoreVar`]) never appear in source programs;
//! they are inserted by instrumentation passes (SCHEMATIC or a baseline).

use crate::ids::{CheckpointId, FuncId, Reg, VarId};
use std::fmt;

/// An instruction operand: either a virtual register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The current value of a virtual register.
    Reg(Reg),
    /// A 32-bit immediate constant.
    Imm(i32),
}

impl Operand {
    /// Returns the register if this operand reads one.
    #[inline]
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Two-operand arithmetic and bitwise operations.
///
/// All arithmetic is 32-bit wrapping, matching the fixed-width integer
/// semantics of the MiBench2 kernels. Division and remainder by zero are
/// runtime errors surfaced by the emulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (traps on zero divisor or `i32::MIN / -1`).
    DivS,
    /// Unsigned division (traps on zero divisor).
    DivU,
    /// Signed remainder (traps on zero divisor).
    RemS,
    /// Unsigned remainder (traps on zero divisor).
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (shift amount taken modulo 32).
    Shl,
    /// Logical (zero-filling) shift right (shift amount modulo 32).
    LShr,
    /// Arithmetic (sign-extending) shift right (shift amount modulo 32).
    AShr,
}

impl BinOp {
    /// All binary operators, for exhaustive testing.
    pub const ALL: [BinOp; 13] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::DivS,
        BinOp::DivU,
        BinOp::RemS,
        BinOp::RemU,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::LShr,
        BinOp::AShr,
    ];

    /// The mnemonic used by the textual IR format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::DivS => "sdiv",
            BinOp::DivU => "udiv",
            BinOp::RemS => "srem",
            BinOp::RemU => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
        }
    }

    /// Parses a mnemonic produced by [`BinOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|op| op.mnemonic() == s)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Integer comparison predicates; the result is `1` (true) or `0` (false).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    SLt,
    /// Signed less-or-equal.
    SLe,
    /// Signed greater-than.
    SGt,
    /// Signed greater-or-equal.
    SGe,
    /// Unsigned less-than.
    ULt,
    /// Unsigned less-or-equal.
    ULe,
    /// Unsigned greater-than.
    UGt,
    /// Unsigned greater-or-equal.
    UGe,
}

impl CmpOp {
    /// All comparison predicates, for exhaustive testing.
    pub const ALL: [CmpOp; 10] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::SLt,
        CmpOp::SLe,
        CmpOp::SGt,
        CmpOp::SGe,
        CmpOp::ULt,
        CmpOp::ULe,
        CmpOp::UGt,
        CmpOp::UGe,
    ];

    /// The mnemonic used by the textual IR format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::SLt => "slt",
            CmpOp::SLe => "sle",
            CmpOp::SGt => "sgt",
            CmpOp::SGe => "sge",
            CmpOp::ULt => "ult",
            CmpOp::ULe => "ule",
            CmpOp::UGt => "ugt",
            CmpOp::UGe => "uge",
        }
    }

    /// Parses a mnemonic produced by [`CmpOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|op| op.mnemonic() == s)
    }

    /// Evaluates the predicate on two 32-bit values.
    pub fn eval(self, lhs: i32, rhs: i32) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::SLt => lhs < rhs,
            CmpOp::SLe => lhs <= rhs,
            CmpOp::SGt => lhs > rhs,
            CmpOp::SGe => lhs >= rhs,
            CmpOp::ULt => (lhs as u32) < (rhs as u32),
            CmpOp::ULe => (lhs as u32) <= (rhs as u32),
            CmpOp::UGt => (lhs as u32) > (rhs as u32),
            CmpOp::UGe => (lhs as u32) >= (rhs as u32),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One-operand operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Two's-complement negation (wrapping).
    Neg,
    /// Bitwise complement.
    Not,
}

impl UnOp {
    /// The mnemonic used by the textual IR format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
        }
    }

    /// Parses a mnemonic produced by [`UnOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        [UnOp::Neg, UnOp::Not]
            .into_iter()
            .find(|op| op.mnemonic() == s)
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `dst = op lhs, rhs`
    Bin {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = cmp.pred lhs, rhs` — writes `1` or `0`.
    Cmp {
        /// Destination register.
        dst: Reg,
        /// Predicate.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = op src`
    Un {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: UnOp,
        /// Operand.
        src: Operand,
    },
    /// `dst = src` — register copy or immediate materialization.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = select cond, a, b` — `a` if `cond != 0` else `b`.
    Select {
        /// Destination register.
        dst: Reg,
        /// Condition operand.
        cond: Operand,
        /// Value when the condition is non-zero.
        then_val: Operand,
        /// Value when the condition is zero.
        else_val: Operand,
    },
    /// `dst = load var[idx]` — reads a word of variable `var`.
    ///
    /// `idx` is `None` for scalars (equivalent to index 0). The energy cost
    /// of the access depends on whether `var` currently resides in VM or
    /// NVM.
    Load {
        /// Destination register.
        dst: Reg,
        /// Variable read.
        var: VarId,
        /// Word index for arrays; `None` for scalars.
        idx: Option<Operand>,
    },
    /// `store var[idx], src` — writes a word of variable `var`.
    Store {
        /// Variable written.
        var: VarId,
        /// Word index for arrays; `None` for scalars.
        idx: Option<Operand>,
        /// Value stored.
        src: Operand,
    },
    /// `dst = call f(args...)` — direct call. Recursion is rejected by the
    /// verifier (the paper handles non-recursive programs only, §III-B.1).
    Call {
        /// Destination register for the return value, if used.
        dst: Option<Reg>,
        /// Callee.
        func: FuncId,
        /// Argument operands, bound to the callee's first `n` registers.
        args: Vec<Operand>,
    },
    /// Checkpoint intrinsic inserted by an instrumentation pass.
    ///
    /// Runtime semantics depend on the instrumented program's failure
    /// policy (wait-for-recharge or rollback) and the checkpoint's spec
    /// (what to save/restore, voltage guard, ...).
    Checkpoint {
        /// Index into the instrumented program's checkpoint table.
        id: CheckpointId,
    },
    /// Conditional checkpoint on a loop back-edge: fires once every
    /// `period` executions (paper §III-B.2, Algorithm 1 line 10).
    CondCheckpoint {
        /// Index into the instrumented program's checkpoint table.
        id: CheckpointId,
        /// Fire once every this many traversals (≥ 1).
        period: u32,
    },
    /// ALFRED-style anticipated save: persist `var` from VM to NVM now
    /// (charged to the *save* energy category).
    SaveVar {
        /// Variable persisted.
        var: VarId,
    },
    /// ALFRED-style deferred restore: if `var`'s VM copy is invalid (lost
    /// in a power failure), reload it from NVM (charged to the *restore*
    /// energy category); otherwise nearly free.
    RestoreVar {
        /// Variable restored.
        var: VarId,
    },
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Load { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. }
            | Inst::Checkpoint { .. }
            | Inst::CondCheckpoint { .. }
            | Inst::SaveVar { .. }
            | Inst::RestoreVar { .. } => None,
        }
    }

    /// Invokes `f` for every operand read by this instruction.
    pub fn for_each_use(&self, mut f: impl FnMut(Operand)) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Un { src, .. } | Inst::Copy { src, .. } => f(*src),
            Inst::Select {
                cond,
                then_val,
                else_val,
                ..
            } => {
                f(*cond);
                f(*then_val);
                f(*else_val);
            }
            Inst::Load { idx, .. } => {
                if let Some(i) = idx {
                    f(*i);
                }
            }
            Inst::Store { idx, src, .. } => {
                if let Some(i) = idx {
                    f(*i);
                }
                f(*src);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            Inst::Checkpoint { .. }
            | Inst::CondCheckpoint { .. }
            | Inst::SaveVar { .. }
            | Inst::RestoreVar { .. } => {}
        }
    }

    /// The variable accessed by this instruction (load/store/save/restore),
    /// together with whether the access is a write.
    pub fn var_access(&self) -> Option<(VarId, AccessKind)> {
        match self {
            Inst::Load { var, .. } => Some((*var, AccessKind::Read)),
            Inst::Store { var, .. } => Some((*var, AccessKind::Write)),
            Inst::SaveVar { var } => Some((*var, AccessKind::Read)),
            Inst::RestoreVar { var } => Some((*var, AccessKind::Write)),
            _ => None,
        }
    }

    /// Returns `true` for checkpoint intrinsics (unconditional or
    /// conditional).
    pub fn is_checkpoint(&self) -> bool {
        matches!(self, Inst::Checkpoint { .. } | Inst::CondCheckpoint { .. })
    }
}

/// Whether a variable access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The access reads the variable.
    Read,
    /// The access writes the variable.
    Write,
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional branch.
    Br(crate::ids::BlockId),
    /// Two-way conditional branch: `then_bb` if `cond != 0`, else `else_bb`.
    CondBr {
        /// Condition operand.
        cond: Operand,
        /// Target when the condition is non-zero.
        then_bb: crate::ids::BlockId,
        /// Target when the condition is zero.
        else_bb: crate::ids::BlockId,
    },
    /// Function return with optional value.
    Ret(Option<Operand>),
}

impl Terminator {
    /// Successor blocks of this terminator, in branch order.
    pub fn successors(&self) -> impl Iterator<Item = crate::ids::BlockId> + '_ {
        let (a, b) = match self {
            Terminator::Br(t) => (Some(*t), None),
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => (Some(*then_bb), Some(*else_bb)),
            Terminator::Ret(_) => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// Returns `true` if this terminator exits the function.
    pub fn is_ret(&self) -> bool {
        matches!(self, Terminator::Ret(_))
    }

    /// Invokes `f` for every operand read by the terminator.
    pub fn for_each_use(&self, mut f: impl FnMut(Operand)) {
        match self {
            Terminator::CondBr { cond, .. } => f(*cond),
            Terminator::Ret(Some(v)) => f(*v),
            _ => {}
        }
    }

    /// Rewrites each successor block id through `f` (used by edge
    /// splitting and unrolling transforms).
    pub fn map_successors(
        &mut self,
        mut f: impl FnMut(crate::ids::BlockId) -> crate::ids::BlockId,
    ) {
        match self {
            Terminator::Br(t) => *t = f(*t),
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Terminator::Ret(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::BlockId;

    #[test]
    fn binop_mnemonic_roundtrip() {
        for op in BinOp::ALL {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOp::from_mnemonic("bogus"), None);
    }

    #[test]
    fn cmpop_mnemonic_roundtrip() {
        for op in CmpOp::ALL {
            assert_eq!(CmpOp::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn unop_mnemonic_roundtrip() {
        for op in [UnOp::Neg, UnOp::Not] {
            assert_eq!(UnOp::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn cmp_eval_signed_vs_unsigned() {
        assert!(CmpOp::SLt.eval(-1, 0));
        assert!(!CmpOp::ULt.eval(-1, 0)); // -1 is u32::MAX
        assert!(CmpOp::UGt.eval(-1, 0));
        assert!(CmpOp::Eq.eval(7, 7));
        assert!(CmpOp::Ne.eval(7, 8));
        assert!(CmpOp::SGe.eval(3, 3));
        assert!(CmpOp::ULe.eval(3, 3));
    }

    #[test]
    fn inst_def_and_uses() {
        let i = Inst::Bin {
            dst: Reg(2),
            op: BinOp::Add,
            lhs: Operand::Reg(Reg(0)),
            rhs: Operand::Imm(4),
        };
        assert_eq!(i.def(), Some(Reg(2)));
        let mut uses = Vec::new();
        i.for_each_use(|o| uses.push(o));
        assert_eq!(uses, vec![Operand::Reg(Reg(0)), Operand::Imm(4)]);
    }

    #[test]
    fn store_has_no_def() {
        let i = Inst::Store {
            var: VarId(0),
            idx: Some(Operand::Reg(Reg(1))),
            src: Operand::Reg(Reg(2)),
        };
        assert_eq!(i.def(), None);
        assert_eq!(i.var_access(), Some((VarId(0), AccessKind::Write)));
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondBr {
            cond: Operand::Imm(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        let s: Vec<_> = t.successors().collect();
        assert_eq!(s, vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Ret(None).successors().next().is_none());
        assert!(Terminator::Ret(None).is_ret());
    }

    #[test]
    fn map_successors_rewrites_all() {
        let mut t = Terminator::CondBr {
            cond: Operand::Imm(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        t.map_successors(|b| BlockId(b.0 + 10));
        let s: Vec<_> = t.successors().collect();
        assert_eq!(s, vec![BlockId(11), BlockId(12)]);
    }

    #[test]
    fn checkpoint_is_checkpoint() {
        assert!(Inst::Checkpoint {
            id: CheckpointId(0)
        }
        .is_checkpoint());
        assert!(Inst::CondCheckpoint {
            id: CheckpointId(0),
            period: 4
        }
        .is_checkpoint());
        assert!(!Inst::SaveVar { var: VarId(0) }.is_checkpoint());
    }
}
