//! Strongly-typed identifiers for IR entities.
//!
//! All IR containers ([`Module`](crate::Module), [`Function`](crate::Function))
//! store their entities in dense vectors; these newtypes are the indices into
//! those vectors. Using distinct types prevents mixing, say, a block index
//! with a register index (C-NEWTYPE).

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_usize(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }

            /// Returns the raw index, for use with slice indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a basic block within a single [`Function`](crate::Function).
    BlockId,
    "bb"
);
id_type!(
    /// Identifier of a virtual register within a single
    /// [`Function`](crate::Function). Registers are function-local volatile
    /// storage: they are lost on a power failure and saved/restored by the
    /// checkpoint runtime.
    Reg,
    "r"
);
id_type!(
    /// Identifier of a module-level variable (scalar or array).
    ///
    /// Variables are the unit of the paper's memory-allocation decisions:
    /// each variable lives either in volatile memory (VM) or non-volatile
    /// memory (NVM) in every inter-checkpoint region.
    VarId,
    "@v"
);
id_type!(
    /// Identifier of a function within a [`Module`](crate::Module).
    FuncId,
    "fn"
);
id_type!(
    /// Identifier of a checkpoint location enabled by an instrumentation
    /// pass. Indexes the checkpoint table of an instrumented program.
    CheckpointId,
    "cp"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let b = BlockId::from_usize(7);
        assert_eq!(b.index(), 7);
        assert_eq!(usize::from(b), 7);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(BlockId(3).to_string(), "bb3");
        assert_eq!(Reg(0).to_string(), "r0");
        assert_eq!(VarId(12).to_string(), "@v12");
        assert_eq!(FuncId(1).to_string(), "fn1");
        assert_eq!(CheckpointId(9).to_string(), "cp9");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(BlockId(1) < BlockId(2));
        assert_eq!(Reg(5), Reg(5));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn from_usize_overflow_panics() {
        let _ = BlockId::from_usize(usize::MAX);
    }
}
