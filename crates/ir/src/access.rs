//! Per-block variable access counting.
//!
//! The gain function of SCHEMATIC (Eq. 1) needs, for every inter-checkpoint
//! interval, the number of read (`nR`) and write (`nW`) accesses to each
//! variable. This module computes those counts per basic block; interval
//! counts are sums over the blocks of the interval.

use crate::ids::{BlockId, VarId};
use crate::inst::{AccessKind, Inst};
use crate::module::Function;
use std::collections::HashMap;
use std::ops::{Add, AddAssign};

/// Read/write access counts for one variable in one program region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCount {
    /// Number of read (load) accesses.
    pub reads: u64,
    /// Number of write (store) accesses.
    pub writes: u64,
}

impl AccessCount {
    /// Total accesses.
    pub fn total(self) -> u64 {
        self.reads + self.writes
    }
}

impl Add for AccessCount {
    type Output = AccessCount;
    fn add(self, rhs: AccessCount) -> AccessCount {
        AccessCount {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

impl AddAssign for AccessCount {
    fn add_assign(&mut self, rhs: AccessCount) {
        *self = *self + rhs;
    }
}

/// Access counts of every variable in every block of one function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessMap {
    per_block: Vec<HashMap<VarId, AccessCount>>,
}

impl AccessMap {
    /// Counts the accesses in each block of `func`.
    ///
    /// `SaveVar`/`RestoreVar` intrinsics are *not* counted: their cost is
    /// accounted by the checkpoint cost model, not the access model.
    pub fn new(func: &Function) -> Self {
        let mut per_block = Vec::with_capacity(func.blocks.len());
        for block in &func.blocks {
            let mut counts: HashMap<VarId, AccessCount> = HashMap::new();
            for inst in &block.insts {
                match inst {
                    Inst::Load { var, .. } => counts.entry(*var).or_default().reads += 1,
                    Inst::Store { var, .. } => counts.entry(*var).or_default().writes += 1,
                    _ => {}
                }
            }
            per_block.push(counts);
        }
        AccessMap { per_block }
    }

    /// Accesses to `var` in `block`.
    pub fn of(&self, block: BlockId, var: VarId) -> AccessCount {
        self.per_block[block.index()]
            .get(&var)
            .copied()
            .unwrap_or_default()
    }

    /// All variables accessed in `block`, with counts.
    pub fn block(&self, block: BlockId) -> &HashMap<VarId, AccessCount> {
        &self.per_block[block.index()]
    }

    /// Sums access counts over a sequence of blocks (an interval of a
    /// path). Blocks may repeat; each occurrence counts.
    pub fn sum_over<'a>(
        &self,
        blocks: impl IntoIterator<Item = &'a BlockId>,
    ) -> HashMap<VarId, AccessCount> {
        let mut total: HashMap<VarId, AccessCount> = HashMap::new();
        for &b in blocks {
            for (&v, &c) in self.block(b) {
                *total.entry(v).or_default() += c;
            }
        }
        total
    }

    /// Aggregate counts over the entire function.
    pub fn whole_function(&self) -> HashMap<VarId, AccessCount> {
        let mut total: HashMap<VarId, AccessCount> = HashMap::new();
        for counts in &self.per_block {
            for (&v, &c) in counts {
                *total.entry(v).or_default() += c;
            }
        }
        total
    }

    /// Variables accessed anywhere in the function.
    pub fn touched_vars(&self) -> crate::varset::VarSet {
        let mut s = crate::varset::VarSet::empty();
        for counts in &self.per_block {
            s.extend(counts.keys().copied());
        }
        s
    }
}

/// Variables written (by a store or a `SaveVar`) anywhere in the module.
///
/// A variable outside this set is read-only: its VM copy can never be
/// dirty, so checkpoints never need to persist it — only (re)load it.
pub fn written_vars(module: &Function) -> crate::varset::VarSet {
    let mut s = crate::varset::VarSet::empty();
    for block in &module.blocks {
        for inst in &block.insts {
            if let Some((v, AccessKind::Write)) = inst.var_access() {
                s.insert(v);
            }
        }
    }
    s
}

/// Module-wide [`written_vars`].
pub fn module_written_vars(module: &crate::module::Module) -> crate::varset::VarSet {
    let mut s = crate::varset::VarSet::new(module.vars.len());
    for func in &module.funcs {
        s.union_with(&written_vars(func));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};
    use crate::module::Variable;

    #[test]
    fn counts_loads_and_stores() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let y = mb.var(Variable::array("y", 4));
        let mut f = FunctionBuilder::new("f", 0);
        let a = f.load_scalar(x);
        let b = f.load_scalar(x);
        let s = f.bin(crate::inst::BinOp::Add, a, b);
        f.store_idx(y, 0, s);
        f.store_scalar(x, s);
        f.ret(None);
        let func = f.finish();
        let am = AccessMap::new(&func);
        let entry = BlockId(0);
        assert_eq!(
            am.of(entry, x),
            AccessCount {
                reads: 2,
                writes: 1
            }
        );
        assert_eq!(
            am.of(entry, y),
            AccessCount {
                reads: 0,
                writes: 1
            }
        );
        assert_eq!(am.of(entry, x).total(), 3);
        assert_eq!(am.block(entry).len(), 2);
        assert!(am.touched_vars().contains(x));
    }

    #[test]
    fn absent_variable_counts_zero() {
        let mut f = FunctionBuilder::new("f", 0);
        f.ret(None);
        let am = AccessMap::new(&f.finish());
        assert_eq!(am.of(BlockId(0), VarId(9)), AccessCount::default());
    }

    #[test]
    fn sum_over_counts_repeats() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("f", 0);
        let exit = f.new_block("exit");
        let _ = f.load_scalar(x);
        f.br(exit);
        f.switch_to(exit);
        f.ret(None);
        let func = f.finish();
        let am = AccessMap::new(&func);
        let entry = BlockId(0);
        let sum = am.sum_over(&[entry, entry, exit]);
        assert_eq!(sum[&x].reads, 2); // entry counted twice
    }

    #[test]
    fn whole_function_aggregates_blocks() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("f", 0);
        let b2 = f.new_block("b2");
        f.store_scalar(x, 1);
        f.br(b2);
        f.switch_to(b2);
        let _ = f.load_scalar(x);
        f.ret(None);
        let am = AccessMap::new(&f.finish());
        let total = am.whole_function();
        assert_eq!(
            total[&x],
            AccessCount {
                reads: 1,
                writes: 1
            }
        );
    }

    #[test]
    fn access_count_arithmetic() {
        let mut a = AccessCount {
            reads: 1,
            writes: 2,
        };
        a += AccessCount {
            reads: 3,
            writes: 4,
        };
        assert_eq!(
            a,
            AccessCount {
                reads: 4,
                writes: 6
            }
        );
        assert_eq!(a.total(), 10);
    }
}
