//! Dominator-tree computation (Cooper–Harvey–Kennedy iterative algorithm).
//!
//! Dominance is used by the loop analysis to identify back-edges: an edge
//! `l -> h` is a back-edge of a natural loop iff `h` dominates `l`.

use crate::cfg::Cfg;
use crate::ids::BlockId;

/// Immediate-dominator tree for the blocks reachable from the entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of `b`; the entry is its own
    /// idom; unreachable blocks have `None`.
    idom: Vec<Option<BlockId>>,
    /// Reverse postorder used during computation (cached for clients).
    rpo: Vec<BlockId>,
}

impl Dominators {
    /// Computes dominators over `cfg`.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.len();
        let rpo = cfg.reverse_postorder();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[cfg.entry.index()] = Some(cfg.entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_index[a.index()] > rpo_index[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while rpo_index[b.index()] > rpo_index[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }

        Dominators { idom, rpo }
    }

    /// The immediate dominator of `b` (the entry's idom is itself);
    /// `None` for blocks unreachable from the entry.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive).
    ///
    /// Returns `false` if either block is unreachable.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() || self.idom[a.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let up = self.idom[cur.index()].expect("reachable block");
            if up == cur {
                return false; // reached entry
            }
            cur = up;
        }
    }

    /// The reverse postorder computed during construction.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CmpOp;
    use crate::Reg;

    fn doms(f: &crate::module::Function) -> (Cfg, Dominators) {
        let cfg = Cfg::new(f);
        let d = Dominators::new(&cfg);
        (cfg, d)
    }

    #[test]
    fn diamond_dominators() {
        let mut f = FunctionBuilder::new("f", 1);
        let t = f.new_block("t");
        let e = f.new_block("e");
        let join = f.new_block("join");
        let c = f.cmp(CmpOp::SGt, Reg(0), 0);
        f.cond_br(c, t, e);
        f.switch_to(t);
        f.br(join);
        f.switch_to(e);
        f.br(join);
        f.switch_to(join);
        f.ret(None);
        let func = f.finish();
        let (_, d) = doms(&func);

        let entry = BlockId(0);
        assert_eq!(d.idom(entry), Some(entry));
        assert_eq!(d.idom(t), Some(entry));
        assert_eq!(d.idom(e), Some(entry));
        assert_eq!(d.idom(join), Some(entry)); // not t or e
        assert!(d.dominates(entry, join));
        assert!(!d.dominates(t, join));
        assert!(d.dominates(t, t));
    }

    #[test]
    fn loop_header_dominates_latch() {
        let mut f = FunctionBuilder::new("f", 0);
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        f.br(header);
        f.switch_to(header);
        let c = f.copy(1);
        f.cond_br(c, body, exit);
        f.switch_to(body);
        f.br(header);
        f.switch_to(exit);
        f.ret(None);
        let func = f.finish();
        let (_, d) = doms(&func);
        assert!(d.dominates(header, body));
        assert!(d.dominates(header, exit));
        assert!(!d.dominates(body, header));
    }

    #[test]
    fn unreachable_block_has_no_idom() {
        let mut f = FunctionBuilder::new("f", 0);
        f.ret(None);
        let mut func = f.finish();
        let dead = func.add_block(crate::module::Block {
            name: None,
            insts: vec![],
            term: crate::inst::Terminator::Ret(None),
        });
        let (_, d) = doms(&func);
        assert_eq!(d.idom(dead), None);
        assert!(!d.is_reachable(dead));
        assert!(!d.dominates(BlockId(0), dead));
        assert!(!d.dominates(dead, BlockId(0)));
    }

    #[test]
    fn nested_loop_dominance_chain() {
        // entry -> outer -> inner -> inner_body -> inner (back)
        //                 inner -> outer_latch -> outer (back); outer -> exit
        let mut f = FunctionBuilder::new("f", 0);
        let outer = f.new_block("outer");
        let inner = f.new_block("inner");
        let inner_body = f.new_block("inner_body");
        let outer_latch = f.new_block("outer_latch");
        let exit = f.new_block("exit");
        f.br(outer);
        f.switch_to(outer);
        let c1 = f.copy(1);
        f.cond_br(c1, inner, exit);
        f.switch_to(inner);
        let c2 = f.copy(1);
        f.cond_br(c2, inner_body, outer_latch);
        f.switch_to(inner_body);
        f.br(inner);
        f.switch_to(outer_latch);
        f.br(outer);
        f.switch_to(exit);
        f.ret(None);
        let func = f.finish();
        let (_, d) = doms(&func);
        assert_eq!(d.idom(inner), Some(outer));
        assert_eq!(d.idom(inner_body), Some(inner));
        assert_eq!(d.idom(outer_latch), Some(inner));
        assert!(d.dominates(outer, outer_latch));
    }
}
