//! Variable liveness analysis.
//!
//! SCHEMATIC uses liveness to shrink checkpoints (Eq. 2, §III-A.2): a
//! VM-resident variable is *saved* at a checkpoint only if it may still be
//! read afterwards, and *restored* after a checkpoint only if its first
//! subsequent access may be a read.
//!
//! The analysis is a classic backward may-dataflow at **variable**
//! granularity:
//!
//! * a `load` of `v` *generates* liveness (unless a full definition of `v`
//!   appears earlier in the block);
//! * a `store` to a **scalar** `v` is a full definition and *kills*
//!   liveness; an indexed store into an array is a partial write and kills
//!   nothing (the untouched elements may still be read);
//! * a `call` generates liveness for every variable the callee may read
//!   (transitively) and kills nothing.
//!
//! With these `gen`/`kill` sets, `live_in(b)` is exactly "some path from
//! the start of `b` reads `v` before fully overwriting it" — which is the
//! condition for both the save (at the edge's target) and restore
//! decisions.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::ids::{BlockId, FuncId};
use crate::inst::Inst;
use crate::module::{Function, Module};
use crate::varset::VarSet;

/// The variables a function may read or write, transitively through calls.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CallEffect {
    /// Variables possibly read.
    pub reads: VarSet,
    /// Variables possibly written (fully or partially).
    pub writes: VarSet,
}

/// Computes the transitive read/write variable sets of every function.
///
/// # Panics
///
/// Panics if the call graph is recursive (callers must reject recursion
/// first via [`CallGraph::bottom_up_order`]).
pub fn call_effects(module: &Module) -> Vec<CallEffect> {
    let cg = CallGraph::new(module);
    let order = cg
        .bottom_up_order(module)
        .expect("call_effects requires a non-recursive module");
    let mut effects = vec![CallEffect::default(); module.funcs.len()];
    for fid in order {
        let mut eff = CallEffect::default();
        for block in &module.func(fid).blocks {
            for inst in &block.insts {
                match inst {
                    Inst::Load { var, .. } | Inst::RestoreVar { var } => {
                        // RestoreVar reads NVM; at variable granularity it
                        // counts as a write to the VM copy, but for
                        // liveness purposes it touches `var` as a read of
                        // persistent state.
                        eff.reads.insert(*var);
                        if matches!(inst, Inst::RestoreVar { .. }) {
                            eff.writes.insert(*var);
                        }
                    }
                    Inst::Store { var, .. } | Inst::SaveVar { var } => {
                        eff.writes.insert(*var);
                    }
                    Inst::Call { func, .. } => {
                        let callee = effects[func.index()].clone();
                        eff.reads.union_with(&callee.reads);
                        eff.writes.union_with(&callee.writes);
                    }
                    _ => {}
                }
            }
        }
        effects[fid.index()] = eff;
    }
    effects
}

/// Result of the per-function variable liveness analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarLiveness {
    live_in: Vec<VarSet>,
    live_out: Vec<VarSet>,
    gen: Vec<VarSet>,
    kill: Vec<VarSet>,
}

impl VarLiveness {
    /// Runs the analysis on `func`.
    ///
    /// * `effects` — transitive call effects from [`call_effects`]
    ///   (indexed by [`FuncId`]); pass an empty slice for call-free
    ///   functions.
    /// * `exit_live` — variables assumed live when the function returns.
    ///   For an entry function this is typically empty; for callees a
    ///   conservative choice is every variable the rest of the program may
    ///   read.
    pub fn new(func: &Function, cfg: &Cfg, effects: &[CallEffect], exit_live: &VarSet) -> Self {
        let n = func.blocks.len();
        let mut gen = vec![VarSet::empty(); n];
        let mut kill = vec![VarSet::empty(); n];

        for (id, block) in func.iter_blocks() {
            let g = &mut gen[id.index()];
            let k = &mut kill[id.index()];
            for inst in &block.insts {
                match inst {
                    Inst::Load { var, idx: _, .. }
                        if !k.contains(*var) => {
                            g.insert(*var);
                        }
                    Inst::Store { var, idx, .. }
                        // Full kill only for scalar stores.
                        if idx.is_none() && !g.contains(*var) => {
                            k.insert(*var);
                        }
                    Inst::Call { func: callee, .. } => {
                        if let Some(eff) = effects.get(callee.index()) {
                            // Callee reads gen liveness for anything not
                            // already fully defined here.
                            for v in eff.reads.iter() {
                                if !k.contains(v) {
                                    g.insert(v);
                                }
                            }
                            // Callee writes are conservative (may be
                            // partial): they kill nothing.
                        }
                    }
                    Inst::SaveVar { var }
                        // Reads the VM copy.
                        if !k.contains(*var) => {
                            g.insert(*var);
                        }
                    Inst::RestoreVar { var } => {
                        // Overwrites the whole VM copy from NVM, but the
                        // NVM value equals the variable's last persisted
                        // value: treat as neither gen nor kill at this
                        // granularity.
                        let _ = var;
                    }
                    _ => {}
                }
            }
        }

        let mut live_in = vec![VarSet::empty(); n];
        let mut live_out = vec![VarSet::empty(); n];

        // Backward fixpoint in postorder (fast for reducible CFGs).
        let order = cfg.postorder();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut out = VarSet::empty();
                if func.block(b).term.is_ret() {
                    out.union_with(exit_live);
                }
                for &s in cfg.succs(b) {
                    out.union_with(&live_in[s.index()]);
                }
                let mut inp = out.clone();
                inp.subtract(&kill[b.index()]);
                inp.union_with(&gen[b.index()]);
                if inp != live_in[b.index()] {
                    live_in[b.index()] = inp;
                    changed = true;
                }
                live_out[b.index()] = out;
            }
        }

        VarLiveness {
            live_in,
            live_out,
            gen,
            kill,
        }
    }

    /// Convenience constructor for a whole module: analyzes `fid` with
    /// conservative exit liveness (every variable) unless it is the entry
    /// function (nothing live after `main` returns).
    pub fn of_module_func(module: &Module, fid: FuncId, effects: &[CallEffect]) -> Self {
        let func = module.func(fid);
        let cfg = Cfg::new(func);
        let exit_live = if module.entry == Some(fid) {
            VarSet::empty()
        } else {
            VarSet::full(module.vars.len())
        };
        Self::new(func, &cfg, effects, &exit_live)
    }

    /// Variables live at entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &VarSet {
        &self.live_in[b.index()]
    }

    /// Variables live at exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &VarSet {
        &self.live_out[b.index()]
    }

    /// Variables live on the CFG edge `from -> to`.
    ///
    /// A checkpoint placed on this edge must save exactly the VM-resident
    /// variables in this set (they may be read later) and restore the
    /// subset whose first later access may be a read — which is the same
    /// set at variable granularity.
    pub fn live_on_edge(&self, _from: BlockId, to: BlockId) -> &VarSet {
        // Edge liveness equals live_in of the target for a may-analysis.
        &self.live_in[to.index()]
    }

    /// The gen set of a block (first access is a read).
    pub fn gen(&self, b: BlockId) -> &VarSet {
        &self.gen[b.index()]
    }

    /// The kill set of a block (fully defined before any read).
    pub fn kill(&self, b: BlockId) -> &VarSet {
        &self.kill[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};
    use crate::module::Variable;

    fn analyze(module: &Module) -> VarLiveness {
        let effects = call_effects(module);
        VarLiveness::of_module_func(module, module.entry_func(), &effects)
    }

    #[test]
    fn read_then_write_is_live_in() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        let a = f.load_scalar(x);
        f.store_scalar(x, a);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let lv = analyze(&m);
        assert!(lv.live_in(BlockId(0)).contains(x));
        assert!(lv.gen(BlockId(0)).contains(x));
        assert!(!lv.kill(BlockId(0)).contains(x));
    }

    #[test]
    fn write_then_read_kills() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        f.store_scalar(x, 1);
        let _ = f.load_scalar(x);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let lv = analyze(&m);
        assert!(!lv.live_in(BlockId(0)).contains(x));
        assert!(lv.kill(BlockId(0)).contains(x));
    }

    #[test]
    fn array_store_does_not_kill() {
        let mut mb = ModuleBuilder::new("m");
        let a = mb.var(Variable::array("a", 8));
        let mut f = FunctionBuilder::new("main", 0);
        let b2 = f.new_block("b2");
        f.store_idx(a, 0, 5);
        f.br(b2);
        f.switch_to(b2);
        let _ = f.load_idx(a, 3);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let lv = analyze(&m);
        // The indexed store in entry does not kill `a`, so the later read
        // makes `a` live at function entry.
        assert!(lv.live_in(BlockId(0)).contains(a));
    }

    #[test]
    fn liveness_propagates_through_loop() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        f.br(header);
        f.switch_to(header);
        let c = f.copy(1);
        f.cond_br(c, body, exit);
        f.switch_to(body);
        let v = f.load_scalar(x); // read inside the loop
        f.store_scalar(x, v);
        f.br(header);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let lv = analyze(&m);
        assert!(lv.live_in(header).contains(x));
        assert!(lv.live_on_edge(BlockId(0), header).contains(x));
        assert!(!lv.live_in(exit).contains(x));
    }

    #[test]
    fn call_effects_are_transitive() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let y = mb.var(Variable::scalar("y"));
        // leaf reads x, writes y
        let mut leaf = FunctionBuilder::new("leaf", 0);
        let v = leaf.load_scalar(x);
        leaf.store_scalar(y, v);
        leaf.ret(None);
        let leaf = mb.func(leaf.finish());
        // mid calls leaf
        let mut mid = FunctionBuilder::new("mid", 0);
        mid.call_void(leaf, vec![]);
        mid.ret(None);
        let mid = mb.func(mid.finish());
        // main calls mid
        let mut f = FunctionBuilder::new("main", 0);
        f.call_void(mid, vec![]);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let eff = call_effects(&m);
        assert!(eff[mid.index()].reads.contains(x));
        assert!(eff[mid.index()].writes.contains(y));
        assert!(eff[main.index()].reads.contains(x));

        // x is live at main entry because the call chain may read it.
        let lv = analyze(&m);
        assert!(lv.live_in(BlockId(0)).contains(x));
        assert!(!lv.live_in(BlockId(0)).contains(y));
    }

    #[test]
    fn exit_liveness_respected_for_callees() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut g = FunctionBuilder::new("g", 0);
        g.store_scalar(x, 1);
        g.ret(None);
        let g = mb.func(g.finish());
        let mut f = FunctionBuilder::new("main", 0);
        f.call_void(g, vec![]);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let effects = call_effects(&m);
        // Non-entry function: conservative exit liveness keeps x live at
        // exit; since g writes x fully, x is dead at entry (killed) but
        // live at exit.
        let lvg = VarLiveness::of_module_func(&m, g, &effects);
        assert!(lvg.live_out(BlockId(0)).contains(x));
        assert!(!lvg.live_in(BlockId(0)).contains(x));
    }
}
