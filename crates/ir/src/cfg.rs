//! Control-flow graph construction and traversals.

use crate::ids::BlockId;
use crate::module::{Edge, Function};

/// Successor/predecessor adjacency for a function's CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Successors of each block, in terminator order.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors of each block, in discovery order.
    pub preds: Vec<Vec<BlockId>>,
    /// Entry block.
    pub entry: BlockId,
    /// Blocks whose terminator is `ret`.
    pub exits: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn new(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut exits = Vec::new();
        for (id, block) in func.iter_blocks() {
            for s in block.term.successors() {
                succs[id.index()].push(s);
                preds[s.index()].push(id);
            }
            if block.term.is_ret() {
                exits.push(id);
            }
        }
        Cfg {
            succs,
            preds,
            entry: func.entry,
            exits,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Returns `true` when the function has no blocks (impossible for
    /// verified functions, provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// All CFG edges, in block order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut edges = Vec::new();
        for (i, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                edges.push(Edge::new(BlockId::from_usize(i), s));
            }
        }
        edges
    }

    /// Whether `from -> to` is a CFG edge.
    pub fn has_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.succs(from).contains(&to)
    }

    /// Blocks reachable from the entry, in depth-first preorder.
    pub fn reachable(&self) -> Vec<BlockId> {
        let mut seen = vec![false; self.len()];
        let mut order = Vec::new();
        let mut stack = vec![self.entry];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b.index()], true) {
                continue;
            }
            order.push(b);
            // Push in reverse so the first successor is visited first.
            for &s in self.succs(b).iter().rev() {
                if !seen[s.index()] {
                    stack.push(s);
                }
            }
        }
        order
    }

    /// Reverse postorder of the blocks reachable from the entry.
    ///
    /// Forward dataflow problems converge fastest in this order.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut po = self.postorder();
        po.reverse();
        po
    }

    /// Postorder of the blocks reachable from the entry.
    pub fn postorder(&self) -> Vec<BlockId> {
        // Iterative DFS with an explicit "visit successors then emit" state.
        let n = self.len();
        let mut seen = vec![false; n];
        let mut order = Vec::new();
        // (block, next successor index)
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        seen[self.entry.index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = self.succs(b);
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
                stack.pop();
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CmpOp;
    use crate::Reg;

    /// entry -> {t, e} -> join -> ret
    fn diamond() -> Function {
        let mut f = FunctionBuilder::new("f", 1);
        let t = f.new_block("t");
        let e = f.new_block("e");
        let join = f.new_block("join");
        let c = f.cmp(CmpOp::SGt, Reg(0), 0);
        f.cond_br(c, t, e);
        f.switch_to(t);
        f.br(join);
        f.switch_to(e);
        f.br(join);
        f.switch_to(join);
        f.ret(None);
        f.finish()
    }

    #[test]
    fn adjacency_matches_terminators() {
        let func = diamond();
        let cfg = Cfg::new(&func);
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.exits, vec![BlockId(3)]);
        assert!(cfg.has_edge(BlockId(0), BlockId(1)));
        assert!(!cfg.has_edge(BlockId(1), BlockId(0)));
        assert!(!cfg.is_empty());
    }

    #[test]
    fn edges_enumeration() {
        let cfg = Cfg::new(&diamond());
        let edges = cfg.edges();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&Edge::new(BlockId(0), BlockId(2))));
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_order() {
        let cfg = Cfg::new(&diamond());
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
        assert_eq!(rpo.len(), 4);
        // Every block appears before its dominated successors in a diamond.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(0)) < pos(BlockId(1)));
        assert!(pos(BlockId(0)) < pos(BlockId(2)));
        assert!(pos(BlockId(1)) < pos(BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_excluded_from_orders() {
        let mut func = diamond();
        // Add a block nothing jumps to.
        func.add_block(crate::module::Block {
            name: Some("dead".into()),
            insts: vec![],
            term: crate::inst::Terminator::Ret(None),
        });
        let cfg = Cfg::new(&func);
        assert_eq!(cfg.reachable().len(), 4);
        assert_eq!(cfg.reverse_postorder().len(), 4);
        assert_eq!(cfg.postorder().len(), 4);
    }

    #[test]
    fn reachable_preorder_visits_first_successor_first() {
        let cfg = Cfg::new(&diamond());
        let pre = cfg.reachable();
        assert_eq!(pre[0], BlockId(0));
        assert_eq!(pre[1], BlockId(1)); // then-branch explored first
    }

    #[test]
    fn self_loop_block() {
        let mut f = FunctionBuilder::new("f", 0);
        let l = f.new_block("l");
        let exit = f.new_block("x");
        f.br(l);
        f.switch_to(l);
        let c = f.copy(0);
        f.cond_br(c, l, exit);
        f.switch_to(exit);
        f.ret(None);
        let func = f.finish();
        let cfg = Cfg::new(&func);
        assert!(cfg.has_edge(l, l));
        assert!(cfg.preds(l).contains(&l));
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo.len(), 3);
    }
}
