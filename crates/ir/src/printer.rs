//! Textual printing of IR modules.
//!
//! The format round-trips through [`crate::parser::parse_module`]:
//!
//! ```text
//! module "sum"
//!
//! var @array : 8 = [1, 2, 3, 4, 5, 6, 7, 8]
//! var @sum : 1
//! var @tab : 256 pinned
//!
//! func @main(0) {
//! entry:
//!   r0 = mov 0
//!   store @sum, r0
//!   br loop
//! loop [max_iters=9]:
//!   r1 = cmp.sge r0, 8
//!   condbr r1, exit, body
//! body:
//!   r2 = load @array[r0]
//!   ...
//! exit:
//!   r5 = load @sum
//!   ret r5
//! }
//! ```

use crate::ids::BlockId;
use crate::inst::{Inst, Operand, Terminator};
use crate::module::{Function, Module};
use std::fmt::Write;

/// Renders `module` in the textual IR format.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\"", module.name);
    if !module.vars.is_empty() {
        out.push('\n');
    }
    for var in &module.vars {
        let _ = write!(out, "var @{} : {}", var.name, var.words);
        if var.pinned_nvm {
            out.push_str(" pinned");
        }
        if !var.init.is_empty() {
            out.push_str(" = [");
            for (i, v) in var.init.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        }
        out.push('\n');
    }
    for (fid, func) in module.iter_funcs() {
        out.push('\n');
        print_function(&mut out, func, module);
        if module.entry == Some(fid) {
            // Entry designation is implied by the name `main`; assert the
            // convention rather than inventing syntax.
        }
    }
    out
}

fn block_label(func: &Function, b: BlockId) -> String {
    match &func.blocks[b.index()].name {
        // Labels must be unique in the textual form; disambiguate
        // repeated names with the block id.
        Some(n) => {
            let first = func
                .blocks
                .iter()
                .position(|blk| blk.name.as_deref() == Some(n));
            if first == Some(b.index()) {
                n.clone()
            } else {
                format!("{n}_bb{}", b.0)
            }
        }
        None => format!("bb{}", b.0),
    }
}

fn print_function(out: &mut String, func: &Function, module: &Module) {
    let _ = writeln!(out, "func @{}({}) {{", func.name, func.n_params);
    for (bid, block) in func.iter_blocks() {
        let _ = write!(out, "{}:", block_label(func, bid));
        if let Some(max) = func.max_iters.get(&bid) {
            let _ = write!(out, " [max_iters={max}]");
        }
        out.push('\n');
        for inst in &block.insts {
            out.push_str("  ");
            print_inst(out, inst, func, module);
            out.push('\n');
        }
        out.push_str("  ");
        print_term(out, &block.term, func);
        out.push('\n');
    }
    out.push_str("}\n");
}

fn op_str(op: Operand) -> String {
    match op {
        Operand::Reg(r) => r.to_string(),
        Operand::Imm(v) => v.to_string(),
    }
}

fn var_name(module: &Module, v: crate::ids::VarId) -> String {
    format!("@{}", module.var(v).name)
}

fn print_inst(out: &mut String, inst: &Inst, func: &Function, module: &Module) {
    match inst {
        Inst::Bin { dst, op, lhs, rhs } => {
            let _ = write!(out, "{dst} = {op} {}, {}", op_str(*lhs), op_str(*rhs));
        }
        Inst::Cmp { dst, op, lhs, rhs } => {
            let _ = write!(out, "{dst} = cmp.{op} {}, {}", op_str(*lhs), op_str(*rhs));
        }
        Inst::Un { dst, op, src } => {
            let _ = write!(out, "{dst} = {op} {}", op_str(*src));
        }
        Inst::Copy { dst, src } => {
            let _ = write!(out, "{dst} = mov {}", op_str(*src));
        }
        Inst::Select {
            dst,
            cond,
            then_val,
            else_val,
        } => {
            let _ = write!(
                out,
                "{dst} = select {}, {}, {}",
                op_str(*cond),
                op_str(*then_val),
                op_str(*else_val)
            );
        }
        Inst::Load { dst, var, idx } => match idx {
            Some(i) => {
                let _ = write!(
                    out,
                    "{dst} = load {}[{}]",
                    var_name(module, *var),
                    op_str(*i)
                );
            }
            None => {
                let _ = write!(out, "{dst} = load {}", var_name(module, *var));
            }
        },
        Inst::Store { var, idx, src } => match idx {
            Some(i) => {
                let _ = write!(
                    out,
                    "store {}[{}], {}",
                    var_name(module, *var),
                    op_str(*i),
                    op_str(*src)
                );
            }
            None => {
                let _ = write!(out, "store {}, {}", var_name(module, *var), op_str(*src));
            }
        },
        Inst::Call { dst, func: f, args } => {
            if let Some(d) = dst {
                let _ = write!(out, "{d} = ");
            }
            let _ = write!(out, "call @{}(", module.func(*f).name);
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&op_str(*a));
            }
            out.push(')');
            let _ = func;
        }
        Inst::Checkpoint { id } => {
            let _ = write!(out, "checkpoint {}", id.0);
        }
        Inst::CondCheckpoint { id, period } => {
            let _ = write!(out, "condcheckpoint {}, {}", id.0, period);
        }
        Inst::SaveVar { var } => {
            let _ = write!(out, "savevar {}", var_name(module, *var));
        }
        Inst::RestoreVar { var } => {
            let _ = write!(out, "restorevar {}", var_name(module, *var));
        }
    }
}

fn print_term(out: &mut String, term: &Terminator, func: &Function) {
    match term {
        Terminator::Br(t) => {
            let _ = write!(out, "br {}", block_label(func, *t));
        }
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => {
            let _ = write!(
                out,
                "condbr {}, {}, {}",
                op_str(*cond),
                block_label(func, *then_bb),
                block_label(func, *else_bb)
            );
        }
        Terminator::Ret(Some(v)) => {
            let _ = write!(out, "ret {}", op_str(*v));
        }
        Terminator::Ret(None) => out.push_str("ret"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};
    use crate::inst::{BinOp, CmpOp};
    use crate::module::Variable;

    #[test]
    fn prints_vars_and_function() {
        let mut mb = ModuleBuilder::new("demo");
        let x = mb.var(Variable::scalar("x"));
        let t = mb.var(Variable::array("tab", 4).with_init(vec![1, 2]).pinned());
        let mut f = FunctionBuilder::new("main", 0);
        let exit = f.new_block("exit");
        let a = f.load_scalar(x);
        let b = f.bin(BinOp::Add, a, 1);
        f.store_idx(t, 0, b);
        let c = f.cmp(CmpOp::Eq, b, 2);
        f.cond_br(c, exit, exit);
        f.switch_to(exit);
        f.ret(Some(b.into()));
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let text = print_module(&m);
        assert!(text.contains("module \"demo\""));
        assert!(text.contains("var @x : 1\n"));
        assert!(text.contains("var @tab : 4 pinned = [1, 2]"));
        assert!(text.contains("func @main(0) {"));
        assert!(text.contains("r0 = load @x"));
        assert!(text.contains("r1 = add r0, 1"));
        assert!(text.contains("store @tab[0], r1"));
        assert!(text.contains("r2 = cmp.eq r1, 2"));
        assert!(text.contains("condbr r2, exit, exit"));
        assert!(text.contains("ret r1"));
    }

    #[test]
    fn prints_intrinsics_and_loops() {
        let mut mb = ModuleBuilder::new("m");
        let v = mb.var(Variable::scalar("v"));
        let mut f = FunctionBuilder::new("main", 0);
        let l = f.new_block("l");
        f.br(l);
        f.switch_to(l);
        f.set_max_iters(l, 5);
        f.ret(None);
        let mut blocks_fn = f.finish();
        // Inject intrinsics directly (builders never create them).
        blocks_fn.blocks[l.index()].insts = vec![
            Inst::Checkpoint {
                id: crate::ids::CheckpointId(0),
            },
            Inst::CondCheckpoint {
                id: crate::ids::CheckpointId(1),
                period: 4,
            },
            Inst::SaveVar { var: v },
            Inst::RestoreVar { var: v },
        ];
        blocks_fn.blocks[l.index()].term = Terminator::Ret(None);
        let main = mb.func(blocks_fn);
        let m = mb.finish(main);
        let text = print_module(&m);
        assert!(text.contains("l: [max_iters=5]"));
        assert!(text.contains("checkpoint 0"));
        assert!(text.contains("condcheckpoint 1, 4"));
        assert!(text.contains("savevar @v"));
        assert!(text.contains("restorevar @v"));
    }

    #[test]
    fn display_impl_matches_print() {
        let m = Module::new("x");
        assert_eq!(m.to_string(), print_module(&m));
    }
}
