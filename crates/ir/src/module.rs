//! Top-level IR containers: [`Module`], [`Function`], [`Block`],
//! [`Variable`].

use crate::ids::{BlockId, FuncId, Reg, VarId};
use crate::inst::{Inst, Operand, Terminator};
use std::collections::HashMap;
use std::fmt;

/// Size of a memory word in bytes. All variables are arrays of words; the
/// VM capacity `SVM` is expressed in bytes.
pub const WORD_BYTES: usize = 4;

/// A module-level program variable (scalar or array).
///
/// Variables are the granularity of SCHEMATIC's memory allocation (§III-A):
/// a variable as a whole is placed in VM or NVM in every inter-checkpoint
/// region. Each variable has a fixed home address in NVM; when VM-resident
/// it additionally occupies `words * WORD_BYTES` bytes of VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variable {
    /// Source-level name (unique within the module, without the `@` sigil).
    pub name: String,
    /// Size in words (≥ 1). A scalar has exactly one word.
    pub words: usize,
    /// Initial contents; shorter than `words` means the tail is
    /// zero-initialized.
    pub init: Vec<i32>,
    /// If `true`, the variable may be accessed through pointers and is
    /// pinned to NVM: no allocation pass may move it to VM (the paper's
    /// implementation does the same, §IV-A.c).
    pub pinned_nvm: bool,
}

impl Variable {
    /// Creates a zero-initialized scalar variable.
    pub fn scalar(name: impl Into<String>) -> Self {
        Variable {
            name: name.into(),
            words: 1,
            init: Vec::new(),
            pinned_nvm: false,
        }
    }

    /// Creates a zero-initialized array variable of `words` words.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn array(name: impl Into<String>, words: usize) -> Self {
        assert!(words > 0, "variable must occupy at least one word");
        Variable {
            name: name.into(),
            words,
            init: Vec::new(),
            pinned_nvm: false,
        }
    }

    /// Sets the initial contents (truncated/zero-extended to `words` at
    /// emulator reset).
    pub fn with_init(mut self, init: Vec<i32>) -> Self {
        self.init = init;
        self
    }

    /// Pins the variable to NVM (see [`Variable::pinned_nvm`]).
    pub fn pinned(mut self) -> Self {
        self.pinned_nvm = true;
        self
    }

    /// Size of the variable in bytes.
    pub fn bytes(&self) -> usize {
        self.words * WORD_BYTES
    }
}

/// A basic block: a straight-line instruction sequence ending in a
/// terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Optional label (unique within the function when present).
    pub name: Option<String>,
    /// Instruction sequence.
    pub insts: Vec<Inst>,
    /// Terminator.
    pub term: Terminator,
}

impl Block {
    /// Creates an empty block that falls through to `target`.
    pub fn jumping_to(target: BlockId) -> Self {
        Block {
            name: None,
            insts: Vec::new(),
            term: Terminator::Br(target),
        }
    }
}

/// A function: a CFG of basic blocks over a private virtual register file.
///
/// Calling convention: the caller's argument operands are copied into the
/// callee's registers `r0..r(n-1)`; the return value, if any, is the operand
/// of the executed `ret`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (unique within the module, without the `@` sigil).
    pub name: String,
    /// Number of parameters; bound to registers `r0..r(n_params-1)`.
    pub n_params: usize,
    /// Total number of virtual registers used (registers are
    /// `r0..r(n_regs-1)`).
    pub n_regs: usize,
    /// Basic blocks; `blocks[entry.index()]` is the entry block.
    pub blocks: Vec<Block>,
    /// Entry block id.
    pub entry: BlockId,
    /// Loop-bound annotations: for each natural-loop header block, the
    /// maximum trip count. Required by the WCEC analysis for every loop
    /// (the paper relies on user annotations, §III-B.2).
    pub max_iters: HashMap<BlockId, u64>,
}

impl Function {
    /// Iterates over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_usize(i), b))
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg::from_usize(self.n_regs);
        self.n_regs += 1;
        r
    }

    /// Appends a new block and returns its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = BlockId::from_usize(self.blocks.len());
        self.blocks.push(block);
        id
    }

    /// Splits the CFG edge `from -> to` by inserting a fresh empty block
    /// between them, returning the new block's id. Both the terminator of
    /// `from` and any other bookkeeping referencing the edge must be
    /// updated by the caller if the edge occurs multiple times (it cannot:
    /// each `(from, to)` pair occurs at most once per terminator arm; when
    /// both arms of a `condbr` target `to`, both are redirected).
    ///
    /// # Panics
    ///
    /// Panics if `from` has no successor edge to `to`.
    pub fn split_edge(&mut self, from: BlockId, to: BlockId) -> BlockId {
        let mid = self.add_block(Block {
            name: None,
            insts: Vec::new(),
            term: Terminator::Br(to),
        });
        let term = &mut self.blocks[from.index()].term;
        let mut found = false;
        term.map_successors(|s| {
            if s == to {
                found = true;
                mid
            } else {
                s
            }
        });
        assert!(found, "no edge {from} -> {to} to split");
        mid
    }

    /// Finds a block by label.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.name.as_deref() == Some(name))
            .map(BlockId::from_usize)
    }

    /// Total number of instructions (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A whole program: variables plus functions, with a designated entry
/// function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    /// Module name, for diagnostics.
    pub name: String,
    /// Program variables, indexed by [`VarId`].
    pub vars: Vec<Variable>,
    /// Functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// Entry function (`main`), if designated.
    pub entry: Option<FuncId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    /// Adds a variable, returning its id.
    pub fn add_var(&mut self, var: Variable) -> VarId {
        let id = VarId::from_usize(self.vars.len());
        self.vars.push(var);
        id
    }

    /// Adds a function, returning its id.
    pub fn add_func(&mut self, func: Function) -> FuncId {
        let id = FuncId::from_usize(self.funcs.len());
        self.funcs.push(func);
        id
    }

    /// Returns the variable with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.index()]
    }

    /// Returns the function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to the function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Finds a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(VarId::from_usize)
    }

    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::from_usize)
    }

    /// The entry function id.
    ///
    /// # Panics
    ///
    /// Panics if no entry function was designated.
    pub fn entry_func(&self) -> FuncId {
        self.entry.expect("module has no entry function")
    }

    /// Total data footprint in bytes (sum of all variable sizes). Used by
    /// Table I's VM-fit check for all-VM techniques.
    pub fn data_bytes(&self) -> usize {
        self.vars.iter().map(Variable::bytes).sum()
    }

    /// Iterates over `(VarId, &Variable)` pairs.
    pub fn iter_vars(&self) -> impl Iterator<Item = (VarId, &Variable)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId::from_usize(i), v))
    }

    /// Iterates over `(FuncId, &Function)` pairs.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId::from_usize(i), f))
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::print_module(self))
    }
}

/// A CFG edge, the unit of potential checkpoint locations (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
}

impl Edge {
    /// Creates an edge.
    pub fn new(from: BlockId, to: BlockId) -> Self {
        Edge { from, to }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// Convenience constructor for an immediate operand.
pub fn imm(v: i32) -> Operand {
    Operand::Imm(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Operand};

    fn tiny_func() -> Function {
        Function {
            name: "f".into(),
            n_params: 0,
            n_regs: 1,
            blocks: vec![
                Block {
                    name: Some("entry".into()),
                    insts: vec![Inst::Copy {
                        dst: Reg(0),
                        src: Operand::Imm(1),
                    }],
                    term: Terminator::Br(BlockId(1)),
                },
                Block {
                    name: Some("exit".into()),
                    insts: vec![],
                    term: Terminator::Ret(Some(Operand::Reg(Reg(0)))),
                },
            ],
            entry: BlockId(0),
            max_iters: HashMap::new(),
        }
    }

    #[test]
    fn variable_constructors() {
        let s = Variable::scalar("x");
        assert_eq!(s.words, 1);
        assert_eq!(s.bytes(), WORD_BYTES);
        let a = Variable::array("buf", 16).with_init(vec![1, 2]).pinned();
        assert_eq!(a.words, 16);
        assert!(a.pinned_nvm);
        assert_eq!(a.init, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_sized_variable_rejected() {
        let _ = Variable::array("z", 0);
    }

    #[test]
    fn module_lookup_by_name() {
        let mut m = Module::new("t");
        let v = m.add_var(Variable::scalar("sum"));
        let f = m.add_func(tiny_func());
        m.entry = Some(f);
        assert_eq!(m.var_by_name("sum"), Some(v));
        assert_eq!(m.var_by_name("nope"), None);
        assert_eq!(m.func_by_name("f"), Some(f));
        assert_eq!(m.entry_func(), f);
        assert_eq!(m.data_bytes(), WORD_BYTES);
    }

    #[test]
    fn split_edge_inserts_block() {
        let mut f = tiny_func();
        let mid = f.split_edge(BlockId(0), BlockId(1));
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.block(BlockId(0)).term, Terminator::Br(mid));
        assert_eq!(f.block(mid).term, Terminator::Br(BlockId(1)));
    }

    #[test]
    #[should_panic(expected = "no edge")]
    fn split_missing_edge_panics() {
        let mut f = tiny_func();
        f.split_edge(BlockId(1), BlockId(0));
    }

    #[test]
    fn new_reg_increments() {
        let mut f = tiny_func();
        let r1 = f.new_reg();
        let r2 = f.new_reg();
        assert_eq!(r1, Reg(1));
        assert_eq!(r2, Reg(2));
        assert_eq!(f.n_regs, 3);
    }

    #[test]
    fn inst_count_sums_blocks() {
        let f = tiny_func();
        assert_eq!(f.inst_count(), 1);
    }

    #[test]
    fn block_by_name_finds_label() {
        let f = tiny_func();
        assert_eq!(f.block_by_name("exit"), Some(BlockId(1)));
        assert_eq!(f.block_by_name("nope"), None);
    }

    #[test]
    fn edge_display() {
        assert_eq!(Edge::new(BlockId(0), BlockId(3)).to_string(), "bb0->bb3");
    }

    #[test]
    fn op_helpers() {
        assert_eq!(imm(5), Operand::Imm(5));
        let _ = BinOp::Add; // silence unused import in some cfgs
    }
}
