//! Parser for the textual IR format produced by [`crate::printer`].
//!
//! The grammar is line-oriented:
//!
//! ```text
//! module "<name>"
//! var @<name> : <words> [pinned] [= [<int>, ...]]
//! func @<name>(<n_params>) {
//! <label>: [\[max_iters=<n>\]]
//!   <inst>
//!   ...
//!   <terminator>
//! }
//! ```
//!
//! A function named `main` becomes the module entry point. Comments start
//! with `//` or `;` and run to end of line.

use crate::ids::{BlockId, CheckpointId, FuncId, Reg, VarId};
use crate::inst::{BinOp, CmpOp, Inst, Operand, Terminator, UnOp};
use crate::module::{Block, Function, Module, Variable};
use std::collections::HashMap;
use std::fmt;

/// Error produced when parsing fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending token.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    AtIdent(String),
    Int(i64),
    Str(String),
    Punct(char),
    Eol,
}

struct Lexer {
    toks: Vec<(usize, Tok)>, // (line, token)
    pos: usize,
}

fn lex(src: &str) -> Result<Lexer> {
    let mut toks = Vec::new();
    for (ln0, raw_line) in src.lines().enumerate() {
        let line = ln0 + 1;
        let code = match (raw_line.find("//"), raw_line.find(';')) {
            (Some(a), Some(b)) => &raw_line[..a.min(b)],
            (Some(a), None) => &raw_line[..a],
            (None, Some(b)) => &raw_line[..b],
            (None, None) => raw_line,
        };
        let bytes = code.as_bytes();
        let mut i = 0;
        let mut emitted = false;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            emitted = true;
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((line, Tok::Ident(code[start..i].to_string())));
            } else if c == '@' {
                i += 1;
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if start == i {
                    return Err(ParseError {
                        line,
                        message: "expected identifier after '@'".into(),
                    });
                }
                toks.push((line, Tok::AtIdent(code[start..i].to_string())));
            } else if c.is_ascii_digit()
                || (c == '-' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
            {
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &code[start..i];
                let value = text.parse::<i64>().map_err(|_| ParseError {
                    line,
                    message: format!("invalid integer literal '{text}'"),
                })?;
                toks.push((line, Tok::Int(value)));
            } else if c == '"' {
                let start = i + 1;
                let rest = &code[start..];
                let end = rest.find('"').ok_or_else(|| ParseError {
                    line,
                    message: "unterminated string literal".into(),
                })?;
                toks.push((line, Tok::Str(rest[..end].to_string())));
                i = start + end + 1;
            } else if "{}[]():,=.".contains(c) {
                toks.push((line, Tok::Punct(c)));
                i += 1;
            } else {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character '{c}'"),
                });
            }
        }
        if emitted {
            toks.push((line, Tok::Eol));
        }
    }
    Ok(Lexer { toks, pos: 0 })
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|(l, _)| *l)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect_punct(&mut self, c: char) -> Result<()> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected '{c}', found {other:?}"))
            }
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_eol(&mut self) {
        while self.peek() == Some(&Tok::Eol) {
            self.pos += 1;
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn expect_at_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::AtIdent(s)) => Ok(s),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected '@name', found {other:?}"))
            }
        }
    }

    fn expect_int(&mut self) -> Result<i64> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(v),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected integer, found {other:?}"))
            }
        }
    }
}

fn parse_reg(l: &Lexer, s: &str) -> Result<Reg> {
    if let Some(num) = s.strip_prefix('r') {
        if let Ok(v) = num.parse::<u32>() {
            return Ok(Reg(v));
        }
    }
    l.err(format!("expected register 'rN', found '{s}'"))
}

struct PendingCall {
    func_idx: usize,
    block: usize,
    inst: usize,
    callee: String,
    line: usize,
}

struct FuncCtx<'a> {
    vars: &'a HashMap<String, VarId>,
}

impl FuncCtx<'_> {
    fn var(&self, l: &Lexer, name: &str) -> Result<VarId> {
        self.vars.get(name).copied().ok_or_else(|| ParseError {
            line: l.line(),
            message: format!("unknown variable '@{name}'"),
        })
    }
}

fn parse_operand(l: &mut Lexer) -> Result<Operand> {
    match l.next() {
        Some(Tok::Ident(s)) => Ok(Operand::Reg(parse_reg(l, &s)?)),
        Some(Tok::Int(v)) => {
            let v32 = i32::try_from(v).map_err(|_| ParseError {
                line: l.line(),
                message: format!("immediate {v} out of i32 range"),
            })?;
            Ok(Operand::Imm(v32))
        }
        other => {
            l.pos = l.pos.saturating_sub(1);
            l.err(format!("expected operand, found {other:?}"))
        }
    }
}

/// Parses a textual module.
///
/// # Errors
///
/// Returns a [`ParseError`] pinpointing the first offending line on any
/// syntax or reference error (unknown variable/function/label, duplicate
/// names, malformed instruction).
pub fn parse_module(src: &str) -> Result<Module> {
    let mut l = lex(src)?;
    let mut module = Module::new("unnamed");
    let mut var_ids: HashMap<String, VarId> = HashMap::new();
    let mut pending_calls: Vec<PendingCall> = Vec::new();

    l.eat_eol();
    // Optional module header.
    if l.peek() == Some(&Tok::Ident("module".into())) {
        l.next();
        match l.next() {
            Some(Tok::Str(s)) => module.name = s,
            _ => return l.err("expected string after 'module'"),
        }
        l.eat_eol();
    }

    loop {
        l.eat_eol();
        match l.peek() {
            None => break,
            Some(Tok::Ident(k)) if k == "var" => {
                l.next();
                let name = l.expect_at_ident()?;
                if var_ids.contains_key(&name) {
                    return l.err(format!("duplicate variable '@{name}'"));
                }
                l.expect_punct(':')?;
                let words = l.expect_int()?;
                if words <= 0 {
                    return l.err("variable size must be positive");
                }
                let mut var = Variable::array(name.clone(), words as usize);
                if l.peek() == Some(&Tok::Ident("pinned".into())) {
                    l.next();
                    var = var.pinned();
                }
                if l.eat_punct('=') {
                    l.expect_punct('[')?;
                    let mut init = Vec::new();
                    if !l.eat_punct(']') {
                        loop {
                            let v = l.expect_int()?;
                            init.push(v as i32);
                            if l.eat_punct(']') {
                                break;
                            }
                            l.expect_punct(',')?;
                        }
                    }
                    var = var.with_init(init);
                }
                let id = module.add_var(var);
                var_ids.insert(name, id);
            }
            Some(Tok::Ident(k)) if k == "func" => {
                let func = parse_function(&mut l, &module, &var_ids, &mut pending_calls)?;
                if module.func_by_name(&func.name).is_some() {
                    return l.err(format!("duplicate function '@{}'", func.name));
                }
                module.add_func(func);
            }
            other => return l.err(format!("expected 'var' or 'func', found {other:?}")),
        }
        l.eat_eol();
    }

    // Resolve call targets.
    for pc in pending_calls {
        let callee = module.func_by_name(&pc.callee).ok_or(ParseError {
            line: pc.line,
            message: format!("unknown function '@{}'", pc.callee),
        })?;
        if let Inst::Call { func, .. } =
            &mut module.funcs[pc.func_idx].blocks[pc.block].insts[pc.inst]
        {
            *func = callee;
        }
    }

    module.entry = module.func_by_name("main");
    Ok(module)
}

#[allow(clippy::too_many_lines)]
fn parse_function(
    l: &mut Lexer,
    module: &Module,
    var_ids: &HashMap<String, VarId>,
    pending_calls: &mut Vec<PendingCall>,
) -> Result<Function> {
    let func_idx = module.funcs.len();
    l.next(); // 'func'
    let name = l.expect_at_ident()?;
    l.expect_punct('(')?;
    let n_params = l.expect_int()? as usize;
    l.expect_punct(')')?;
    l.expect_punct('{')?;
    l.eat_eol();

    let ctx = FuncCtx { vars: var_ids };

    // Pass 1: split into labelled blocks of raw instructions.
    struct RawBlock {
        name: String,
        max_iters: Option<u64>,
        insts: Vec<Inst>,
        term: Option<RawTerm>,
        line: usize,
    }
    enum RawTerm {
        Br(String),
        CondBr(Operand, String, String),
        Ret(Option<Operand>),
    }

    let mut raw_blocks: Vec<RawBlock> = Vec::new();
    let mut max_reg: u32 = n_params.max(1) as u32 - 1;
    let track = |op: Operand, max_reg: &mut u32| {
        if let Operand::Reg(r) = op {
            *max_reg = (*max_reg).max(r.0);
        }
    };

    loop {
        l.eat_eol();
        if l.eat_punct('}') {
            break;
        }
        // A block label: ident ':'
        let label = l.expect_ident()?;
        let label_line = l.line();
        l.expect_punct(':')?;
        let mut max_iters = None;
        if l.eat_punct('[') {
            let key = l.expect_ident()?;
            if key != "max_iters" {
                return l.err(format!("unknown block attribute '{key}'"));
            }
            l.expect_punct('=')?;
            let v = l.expect_int()?;
            if v < 0 {
                return l.err("max_iters must be non-negative");
            }
            max_iters = Some(v as u64);
            l.expect_punct(']')?;
        }
        l.eat_eol();

        let mut insts = Vec::new();
        let mut term: Option<RawTerm> = None;
        // Parse statements until the next label or '}'.
        loop {
            l.eat_eol();
            // Lookahead: '}' ends the function; `ident :` starts a new block.
            if l.peek() == Some(&Tok::Punct('}')) {
                break;
            }
            if let (Some(Tok::Ident(_)), Some(Tok::Punct(':'))) = (
                l.toks.get(l.pos).map(|(_, t)| t),
                l.toks.get(l.pos + 1).map(|(_, t)| t),
            ) {
                break;
            }
            if term.is_some() {
                return l.err("instruction after terminator");
            }
            match l.next() {
                Some(Tok::Ident(w)) => match w.as_str() {
                    "br" => {
                        let target = l.expect_ident()?;
                        term = Some(RawTerm::Br(target));
                    }
                    "condbr" => {
                        let cond = parse_operand(l)?;
                        track(cond, &mut max_reg);
                        l.expect_punct(',')?;
                        let t = l.expect_ident()?;
                        l.expect_punct(',')?;
                        let e = l.expect_ident()?;
                        term = Some(RawTerm::CondBr(cond, t, e));
                    }
                    "ret" => {
                        let v = if l.peek() == Some(&Tok::Eol) || l.peek().is_none() {
                            None
                        } else {
                            let op = parse_operand(l)?;
                            track(op, &mut max_reg);
                            Some(op)
                        };
                        term = Some(RawTerm::Ret(v));
                    }
                    "store" => {
                        let var = l.expect_at_ident()?;
                        let var = ctx.var(l, &var)?;
                        let idx = if l.eat_punct('[') {
                            let i = parse_operand(l)?;
                            track(i, &mut max_reg);
                            l.expect_punct(']')?;
                            Some(i)
                        } else {
                            None
                        };
                        l.expect_punct(',')?;
                        let src = parse_operand(l)?;
                        track(src, &mut max_reg);
                        insts.push(Inst::Store { var, idx, src });
                    }
                    "call" => {
                        let (inst, callee, line) = parse_call(l, None, &mut max_reg)?;
                        pending_calls.push(PendingCall {
                            func_idx,
                            block: raw_blocks.len(),
                            inst: insts.len(),
                            callee,
                            line,
                        });
                        insts.push(inst);
                    }
                    "checkpoint" => {
                        let id = l.expect_int()?;
                        insts.push(Inst::Checkpoint {
                            id: CheckpointId(id as u32),
                        });
                    }
                    "condcheckpoint" => {
                        let id = l.expect_int()?;
                        l.expect_punct(',')?;
                        let period = l.expect_int()?;
                        if period <= 0 {
                            return l.err("condcheckpoint period must be >= 1");
                        }
                        insts.push(Inst::CondCheckpoint {
                            id: CheckpointId(id as u32),
                            period: period as u32,
                        });
                    }
                    "savevar" => {
                        let v = l.expect_at_ident()?;
                        insts.push(Inst::SaveVar {
                            var: ctx.var(l, &v)?,
                        });
                    }
                    "restorevar" => {
                        let v = l.expect_at_ident()?;
                        insts.push(Inst::RestoreVar {
                            var: ctx.var(l, &v)?,
                        });
                    }
                    reg_text => {
                        // `rN = <rhs>` forms.
                        let dst = parse_reg(l, reg_text)?;
                        max_reg = max_reg.max(dst.0);
                        l.expect_punct('=')?;
                        let inst = parse_assign_rhs(
                            l,
                            dst,
                            &ctx,
                            &mut max_reg,
                            |callee, line, inst_idx| {
                                pending_calls.push(PendingCall {
                                    func_idx,
                                    block: raw_blocks.len(),
                                    inst: inst_idx,
                                    callee,
                                    line,
                                });
                            },
                            insts.len(),
                        )?;
                        insts.push(inst);
                    }
                },
                other => return l.err(format!("expected instruction, found {other:?}")),
            }
            l.eat_eol();
            if term.is_some() {
                break;
            }
        }

        let term = match term {
            Some(t) => t,
            None => {
                return Err(ParseError {
                    line: label_line,
                    message: format!("block '{label}' has no terminator"),
                })
            }
        };
        raw_blocks.push(RawBlock {
            name: label,
            max_iters,
            insts,
            term: Some(term),
            line: label_line,
        });
    }

    if raw_blocks.is_empty() {
        return l.err(format!("function '@{name}' has no blocks"));
    }

    // Pass 2: resolve labels.
    let mut labels: HashMap<String, BlockId> = HashMap::new();
    for (i, rb) in raw_blocks.iter().enumerate() {
        if labels
            .insert(rb.name.clone(), BlockId::from_usize(i))
            .is_some()
        {
            return Err(ParseError {
                line: rb.line,
                message: format!("duplicate block label '{}'", rb.name),
            });
        }
    }
    let resolve = |label: &str, line: usize| -> Result<BlockId> {
        labels.get(label).copied().ok_or(ParseError {
            line,
            message: format!("unknown block label '{label}'"),
        })
    };

    let mut blocks = Vec::with_capacity(raw_blocks.len());
    let mut max_iters = HashMap::new();
    for (i, rb) in raw_blocks.into_iter().enumerate() {
        if let Some(m) = rb.max_iters {
            max_iters.insert(BlockId::from_usize(i), m);
        }
        let term = match rb.term.expect("checked above") {
            RawTerm::Br(t) => Terminator::Br(resolve(&t, rb.line)?),
            RawTerm::CondBr(c, t, e) => Terminator::CondBr {
                cond: c,
                then_bb: resolve(&t, rb.line)?,
                else_bb: resolve(&e, rb.line)?,
            },
            RawTerm::Ret(v) => Terminator::Ret(v),
        };
        blocks.push(Block {
            name: Some(rb.name),
            insts: rb.insts,
            term,
        });
    }

    Ok(Function {
        name,
        n_params,
        n_regs: (max_reg as usize + 1).max(n_params),
        blocks,
        entry: BlockId(0),
        max_iters,
    })
}

fn parse_call(l: &mut Lexer, dst: Option<Reg>, max_reg: &mut u32) -> Result<(Inst, String, usize)> {
    let callee = l.expect_at_ident()?;
    let line = l.line();
    l.expect_punct('(')?;
    let mut args = Vec::new();
    if !l.eat_punct(')') {
        loop {
            let a = parse_operand(l)?;
            if let Operand::Reg(r) = a {
                *max_reg = (*max_reg).max(r.0);
            }
            args.push(a);
            if l.eat_punct(')') {
                break;
            }
            l.expect_punct(',')?;
        }
    }
    Ok((
        Inst::Call {
            dst,
            func: FuncId(u32::MAX), // fixed up by the caller
            args,
        },
        callee,
        line,
    ))
}

fn parse_assign_rhs(
    l: &mut Lexer,
    dst: Reg,
    ctx: &FuncCtx<'_>,
    max_reg: &mut u32,
    mut on_call: impl FnMut(String, usize, usize),
    inst_idx: usize,
) -> Result<Inst> {
    let track = |op: Operand, max_reg: &mut u32| {
        if let Operand::Reg(r) = op {
            *max_reg = (*max_reg).max(r.0);
        }
    };
    let word = l.expect_ident()?;
    match word.as_str() {
        "mov" => {
            let src = parse_operand(l)?;
            track(src, max_reg);
            Ok(Inst::Copy { dst, src })
        }
        "load" => {
            let v = l.expect_at_ident()?;
            let var = ctx.var(l, &v)?;
            let idx = if l.eat_punct('[') {
                let i = parse_operand(l)?;
                track(i, max_reg);
                l.expect_punct(']')?;
                Some(i)
            } else {
                None
            };
            Ok(Inst::Load { dst, var, idx })
        }
        "select" => {
            let cond = parse_operand(l)?;
            track(cond, max_reg);
            l.expect_punct(',')?;
            let a = parse_operand(l)?;
            track(a, max_reg);
            l.expect_punct(',')?;
            let b = parse_operand(l)?;
            track(b, max_reg);
            Ok(Inst::Select {
                dst,
                cond,
                then_val: a,
                else_val: b,
            })
        }
        "call" => {
            let (inst, callee, line) = parse_call(l, Some(dst), max_reg)?;
            on_call(callee, line, inst_idx);
            Ok(inst)
        }
        "cmp" => {
            l.expect_punct('.')?;
            let pred = l.expect_ident()?;
            let op = CmpOp::from_mnemonic(&pred).ok_or_else(|| ParseError {
                line: l.line(),
                message: format!("unknown comparison predicate '{pred}'"),
            })?;
            let lhs = parse_operand(l)?;
            track(lhs, max_reg);
            l.expect_punct(',')?;
            let rhs = parse_operand(l)?;
            track(rhs, max_reg);
            Ok(Inst::Cmp { dst, op, lhs, rhs })
        }
        other => {
            if let Some(op) = UnOp::from_mnemonic(other) {
                let src = parse_operand(l)?;
                track(src, max_reg);
                return Ok(Inst::Un { dst, op, src });
            }
            if let Some(op) = BinOp::from_mnemonic(other) {
                let lhs = parse_operand(l)?;
                track(lhs, max_reg);
                l.expect_punct(',')?;
                let rhs = parse_operand(l)?;
                track(rhs, max_reg);
                return Ok(Inst::Bin { dst, op, lhs, rhs });
            }
            l.err(format!("unknown instruction '{other}'"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const SUM: &str = r#"
module "sum"

var @array : 8 = [1, 2, 3, 4, 5, 6, 7, 8]
var @sum : 1

func @main(0) {
entry:
  r0 = mov 0
  store @sum, 0
  br loop
loop: [max_iters=9]
  r1 = cmp.sge r0, 8
  condbr r1, exit, body
body:
  r2 = load @array[r0]
  r3 = load @sum
  r4 = add r3, r2
  store @sum, r4
  r0 = add r0, 1
  br loop
exit:
  r5 = load @sum
  ret r5
}
"#;

    #[test]
    fn parses_sum_module() {
        let m = parse_module(SUM).unwrap();
        assert_eq!(m.name, "sum");
        assert_eq!(m.vars.len(), 2);
        assert_eq!(m.var(VarId(0)).init.len(), 8);
        assert_eq!(m.funcs.len(), 1);
        let f = &m.funcs[0];
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.n_regs, 6);
        assert_eq!(f.max_iters[&BlockId(1)], 9);
        assert_eq!(m.entry, Some(FuncId(0)));
    }

    #[test]
    fn roundtrips_through_printer() {
        let m = parse_module(SUM).unwrap();
        let text = print_module(&m);
        let m2 = parse_module(&text).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn parses_calls_with_forward_reference() {
        let src = r#"
func @main(0) {
entry:
  r0 = call @helper(3, r0)
  call @helper(1, 2)
  ret r0
}

func @helper(2) {
entry:
  r2 = add r0, r1
  ret r2
}
"#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.funcs.len(), 2);
        let main = &m.funcs[0];
        match &main.blocks[0].insts[0] {
            Inst::Call { func, args, dst } => {
                assert_eq!(*func, FuncId(1));
                assert_eq!(args.len(), 2);
                assert!(dst.is_some());
            }
            other => panic!("expected call, got {other:?}"),
        }
        let m2 = parse_module(&print_module(&m)).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn parses_intrinsics() {
        let src = r#"
var @v : 2
func @main(0) {
entry:
  checkpoint 0
  condcheckpoint 1, 8
  savevar @v
  restorevar @v
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let insts = &m.funcs[0].blocks[0].insts;
        assert!(matches!(insts[0], Inst::Checkpoint { .. }));
        assert!(matches!(insts[1], Inst::CondCheckpoint { period: 8, .. }));
        assert!(matches!(insts[2], Inst::SaveVar { .. }));
        assert!(matches!(insts[3], Inst::RestoreVar { .. }));
        let m2 = parse_module(&print_module(&m)).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn error_unknown_variable() {
        let err = parse_module("func @main(0) {\nentry:\n  r0 = load @nope\n  ret\n}").unwrap_err();
        assert!(err.message.contains("unknown variable"), "{err}");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn error_unknown_label() {
        let err = parse_module("func @main(0) {\nentry:\n  br nowhere\n}").unwrap_err();
        assert!(err.message.contains("unknown block label"), "{err}");
    }

    #[test]
    fn error_unknown_function() {
        let err = parse_module("func @main(0) {\nentry:\n  call @ghost()\n  ret\n}").unwrap_err();
        assert!(err.message.contains("unknown function"), "{err}");
    }

    #[test]
    fn error_duplicate_label() {
        let err = parse_module("func @main(0) {\na:\n  ret\na:\n  ret\n}").unwrap_err();
        assert!(err.message.contains("duplicate block label"), "{err}");
    }

    #[test]
    fn error_missing_terminator() {
        let err = parse_module("func @main(0) {\nentry:\n  r0 = mov 1\n}").unwrap_err();
        assert!(err.message.contains("no terminator"), "{err}");
    }

    #[test]
    fn error_instruction_after_terminator_unreachable() {
        // `ret` closes the statement list; a stray instruction becomes a
        // parse error because it is not a label.
        let err = parse_module("func @main(0) {\nentry:\n  ret\n  r0 = mov 1\n}").unwrap_err();
        assert!(!err.message.is_empty());
    }

    #[test]
    fn comments_are_ignored() {
        let src =
            "// header\nvar @x : 1 ; trailing\nfunc @main(0) {\nentry: // blocks\n  ret // done\n}";
        let m = parse_module(src).unwrap();
        assert_eq!(m.vars.len(), 1);
    }

    #[test]
    fn negative_immediates() {
        let m = parse_module("func @main(0) {\nentry:\n  r0 = mov -5\n  ret r0\n}").unwrap();
        match m.funcs[0].blocks[0].insts[0] {
            Inst::Copy {
                src: Operand::Imm(-5),
                ..
            } => {}
            ref other => panic!("expected mov -5, got {other:?}"),
        }
    }

    #[test]
    fn pinned_variable_parses() {
        let m = parse_module("var @t : 4 pinned = [1]\nfunc @main(0) {\nentry:\n  ret\n}").unwrap();
        assert!(m.var(VarId(0)).pinned_nvm);
    }

    #[test]
    fn all_binops_parse() {
        for op in BinOp::ALL {
            let src = format!(
                "func @main(0) {{\nentry:\n  r0 = {} 1, 2\n  ret r0\n}}",
                op.mnemonic()
            );
            let m = parse_module(&src).unwrap();
            match m.funcs[0].blocks[0].insts[0] {
                Inst::Bin { op: got, .. } => assert_eq!(got, op),
                ref other => panic!("{other:?}"),
            }
        }
    }
}
