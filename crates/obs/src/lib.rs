//! In-tree structured tracing and metrics for the SCHEMATIC reproduction.
//!
//! Three primitives, all zero-dependency and cheap enough to leave
//! compiled into release binaries:
//!
//! * **Spans** — scoped wall-clock timers ([`span`]) that aggregate per
//!   name into call count, total nanoseconds and a log-linear
//!   [`Histogram`] for quantiles.
//! * **Counters** — monotonic named counters ([`count`]).
//! * **Events** — structured records ([`event`]) with ordered key/value
//!   fields, used for the emulator's intermittent-execution lifecycle
//!   stream and the compiler's decision log.
//!
//! Everything lands in a thread-local [`Registry`]. The work-stealing
//! grid driver runs each cell with [`capture`], which swaps in a fresh
//! registry for the closure and hands it back, so per-cell results are
//! identical no matter which worker thread ran the cell or in what
//! order. Registries merge deterministically ([`Registry::merge_from`]):
//! spans and counters are keyed by `BTreeMap`, histograms add
//! bucketwise, events concatenate in emission order.
//!
//! Collection is gated on a single process-global flag
//! ([`set_enabled`]). When disabled — the default — every entry point
//! reduces to one relaxed atomic load, which keeps the instrumentation
//! out of the emulator's measured hot paths.
//!
//! Span totals are inclusive wall-clock sums: spans may nest (e.g. the
//! RCG span runs inside the placement span), so per-name totals are not
//! mutually exclusive shares of the parent.

#![warn(missing_docs)]

pub mod codec;
pub mod hist;

pub use hist::Histogram;

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Hard cap on buffered events per registry. Pathological cells (tiny
/// TBPF on a large benchmark) can otherwise emit millions of lifecycle
/// events; past the cap the buffer behaves as a ring — the *oldest*
/// event is discarded (counted in [`Registry::dropped_events`]) so the
/// most recent run's lifecycle, including its closing `run_end`
/// snapshot, always survives truncation.
pub const MAX_EVENTS: usize = 1 << 17;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether collection is currently enabled. A single relaxed load, so
/// instrumentation sites stay negligible when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A field value in an [`Event`]: the repo's JSON dialect is
/// u64-and-string only, and the event stream sticks to the same shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An unsigned integer (cycles, picojoules, ids, ...).
    U64(u64),
    /// A short label (status names, variable names, ...).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// One structured record: a kind tag plus ordered key/value fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event kind, e.g. `"checkpoint_commit"` or `"alloc_pick"`.
    pub kind: String,
    /// Ordered fields; order is part of the serialized form.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// The value of field `name`, if present.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// The value of u64 field `name`, if present with that type.
    pub fn u64_field(&self, name: &str) -> Option<u64> {
        match self.field(name) {
            Some(Value::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The label value of field `name`, if present and a string.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        match self.field(name) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }
}

/// Aggregated timings for one span name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of completed spans.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub total_nanos: u64,
    /// Per-call nanosecond distribution.
    pub hist: Histogram,
}

impl PhaseStats {
    fn record(&mut self, nanos: u64) {
        self.calls += 1;
        self.total_nanos = self.total_nanos.saturating_add(nanos);
        self.hist.record(nanos);
    }

    /// Folds `other` into `self`.
    pub fn merge_from(&mut self, other: &PhaseStats) {
        self.calls += other.calls;
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
        self.hist.merge_from(&other.hist);
    }

    /// Mean nanoseconds per call, rounded down (`0` when never called).
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.calls).unwrap_or(0)
    }
}

/// Everything one thread (or one [`capture`] scope) collected.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    /// Span aggregates keyed by span name.
    pub spans: BTreeMap<String, PhaseStats>,
    /// Monotonic counters keyed by name.
    pub counters: BTreeMap<String, u64>,
    /// Structured events in emission order, capped at [`MAX_EVENTS`]
    /// with ring semantics (oldest dropped first).
    pub events: VecDeque<Event>,
    /// Oldest events discarded after the cap was reached.
    pub dropped_events: u64,
    /// Oldest events handed to a [`set_spill`] sink instead of being
    /// dropped — still part of the stream, just resident on disk.
    pub spilled_events: u64,
}

impl Registry {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.events.is_empty()
            && self.dropped_events == 0
            && self.spilled_events == 0
    }

    /// Folds `other` into `self`. Keyed aggregates add; events append
    /// in `other`'s order. Merging a fixed set of registries produces
    /// the same result regardless of how the work that filled them was
    /// scheduled.
    pub fn merge_from(&mut self, other: Registry) {
        for (name, stats) in other.spans {
            self.spans.entry(name).or_default().merge_from(&stats);
        }
        for (name, n) in other.counters {
            *self.counters.entry(name).or_default() += n;
        }
        for ev in other.events {
            self.push_event(ev);
        }
        self.dropped_events += other.dropped_events;
        self.spilled_events += other.spilled_events;
    }

    /// Records one `nanos` sample into the named span aggregate — the
    /// dynamic-name sibling of [`span`] (whose guard requires a
    /// `&'static str`). Services use it to attribute wall time to
    /// runtime-constructed keys, e.g. one span per grid job.
    pub fn record_span(&mut self, name: &str, nanos: u64) {
        self.spans
            .entry(name.to_string())
            .or_default()
            .record(nanos);
    }

    fn push_event(&mut self, ev: Event) {
        if self.events.len() == MAX_EVENTS {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(ev);
    }
}

thread_local! {
    static LOCAL: RefCell<Registry> = RefCell::new(Registry::default());
    static SPILL: RefCell<Option<SpillFn>> = RefCell::new(None);
}

/// An event spill sink: receives batches of the *oldest* buffered
/// events when the thread's registry is full. See [`set_spill`].
pub type SpillFn = Box<dyn FnMut(Vec<Event>)>;

/// Installs (or clears) the calling thread's event spill sink and
/// returns the previous one.
///
/// Without a sink, a full event buffer behaves as a ring: the oldest
/// record is dropped (counted in [`Registry::dropped_events`]). With a
/// sink installed, [`event`] instead drains the oldest half of the
/// buffer into the sink — typically a writer streaming them to disk —
/// so the full stream survives in order: spilled batches first, the
/// resident buffer after. Spilled records are counted in
/// [`Registry::spilled_events`].
///
/// The sink runs on the emitting thread while the spill bookkeeping is
/// live; it must not call [`event`] itself.
pub fn set_spill(f: Option<SpillFn>) -> Option<SpillFn> {
    SPILL.with(|s| std::mem::replace(&mut *s.borrow_mut(), f))
}

/// A live span; records into the thread-local registry on drop. Created
/// by [`span`].
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Starts a scoped timer. When collection is disabled this is a single
/// atomic load and the guard is inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: enabled().then(Instant::now),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            LOCAL.with(|l| {
                l.borrow_mut()
                    .spans
                    .entry(self.name.to_string())
                    .or_default()
                    .record(nanos);
            });
        }
    }
}

/// Adds `n` to the named counter (no-op when collection is disabled).
#[inline]
pub fn count(name: &'static str, n: u64) {
    if enabled() {
        LOCAL.with(|l| {
            *l.borrow_mut().counters.entry(name.to_string()).or_default() += n;
        });
    }
}

/// Records a structured event (no-op when collection is disabled).
pub fn event(kind: &str, fields: Vec<(&str, Value)>) {
    if enabled() {
        // Spill before pushing: drain outside the registry borrow so
        // the sink never observes a half-updated registry.
        let spill_batch = LOCAL.with(|l| {
            let mut reg = l.borrow_mut();
            if reg.events.len() >= MAX_EVENTS && SPILL.with(|s| s.borrow().is_some()) {
                let batch: Vec<Event> = reg.events.drain(..MAX_EVENTS / 2).collect();
                reg.spilled_events += batch.len() as u64;
                Some(batch)
            } else {
                None
            }
        });
        if let Some(batch) = spill_batch {
            SPILL.with(|s| {
                if let Some(f) = s.borrow_mut().as_mut() {
                    f(batch);
                }
            });
        }
        LOCAL.with(|l| {
            l.borrow_mut().push_event(Event {
                kind: kind.to_string(),
                fields: fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            });
        });
    }
}

// ---------------------------------------------------------------------
// Process-global counters
// ---------------------------------------------------------------------

static GLOBAL_COUNTERS: std::sync::Mutex<BTreeMap<String, u64>> =
    std::sync::Mutex::new(BTreeMap::new());

/// The global-counter map, recovering from poison: a panic elsewhere
/// (e.g. a worker thread dying mid-count) must not turn every later
/// tally into an abort. The map is only ever mutated by whole-entry
/// additions, so a poisoned guard still holds consistent data.
fn global_counters() -> std::sync::MutexGuard<'static, BTreeMap<String, u64>> {
    GLOBAL_COUNTERS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Adds `n` to a *process-global* counter. Unlike [`count`], these are
/// shared across threads and independent of the [`set_enabled`] gate —
/// they serve long-lived services (the grid cell cache, the `gridd`
/// daemon) whose hit/miss and request tallies are part of observable
/// behaviour, not optional tracing.
pub fn gcount(name: &str, n: u64) {
    *global_counters().entry(name.to_string()).or_default() += n;
}

/// The current value of a process-global counter (0 when never
/// counted).
pub fn gcounter(name: &str) -> u64 {
    global_counters().get(name).copied().unwrap_or(0)
}

/// A snapshot of every process-global counter.
pub fn gcounters() -> BTreeMap<String, u64> {
    global_counters().clone()
}

/// Takes the calling thread's registry, leaving an empty one behind.
pub fn take_local() -> Registry {
    LOCAL.with(|l| std::mem::take(&mut *l.borrow_mut()))
}

/// Runs `f` with a fresh thread-local registry and returns whatever it
/// recorded alongside its result. Anything the thread had collected
/// before the call is restored afterwards, so captures nest safely.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Registry) {
    let saved = take_local();
    let result = f();
    let captured = take_local();
    LOCAL.with(|l| *l.borrow_mut() = saved);
    (result, captured)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the process-global enabled flag.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _g = GATE.lock().unwrap();
        set_enabled(false);
        let (_, reg) = capture(|| {
            let _s = span("phase");
            count("hits", 3);
            event("kind", vec![("k", Value::U64(1))]);
        });
        assert!(reg.is_empty());
    }

    #[test]
    fn capture_scopes_are_isolated_and_restore() {
        let _g = GATE.lock().unwrap();
        set_enabled(true);
        let prior = take_local();
        count("outer", 1);
        let (_, inner) = capture(|| {
            count("inner", 5);
            event("e", vec![("n", Value::U64(9))]);
        });
        assert_eq!(inner.counters.get("inner"), Some(&5));
        assert_eq!(inner.counters.get("outer"), None);
        assert_eq!(inner.events.len(), 1);
        // The outer context survived the capture.
        let outer = take_local();
        assert_eq!(outer.counters.get("outer"), Some(&1));
        assert_eq!(outer.counters.get("inner"), None);
        set_enabled(false);
        LOCAL.with(|l| *l.borrow_mut() = prior);
    }

    #[test]
    fn spans_aggregate_by_name() {
        let _g = GATE.lock().unwrap();
        set_enabled(true);
        let (_, reg) = capture(|| {
            for _ in 0..4 {
                let _s = span("work");
            }
        });
        set_enabled(false);
        let stats = reg.spans.get("work").expect("span recorded");
        assert_eq!(stats.calls, 4);
        assert_eq!(stats.hist.count(), 4);
        assert!(stats.total_nanos >= stats.hist.min());
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = Registry::default();
        a.counters.insert("x".into(), 2);
        a.spans.entry("s".into()).or_default().record(100);
        a.push_event(Event {
            kind: "e1".into(),
            fields: vec![("v".into(), Value::U64(1))],
        });
        let mut b = Registry::default();
        b.counters.insert("x".into(), 3);
        b.counters.insert("y".into(), 1);
        b.spans.entry("s".into()).or_default().record(300);

        let mut ab = Registry::default();
        ab.merge_from(a.clone());
        ab.merge_from(b.clone());
        let mut ba = Registry::default();
        ba.merge_from(b);
        ba.merge_from(a);

        assert_eq!(ab.counters, ba.counters);
        assert_eq!(ab.spans, ba.spans);
        assert_eq!(ab.counters.get("x"), Some(&5));
        let s = &ab.spans["s"];
        assert_eq!(s.calls, 2);
        assert_eq!(s.total_nanos, 400);
        assert_eq!(s.hist.max(), 300);
    }

    #[test]
    fn event_cap_counts_drops() {
        let mut r = Registry::default();
        for i in 0..(MAX_EVENTS + 10) {
            r.push_event(Event {
                kind: format!("e{i}"),
                fields: Vec::new(),
            });
        }
        assert_eq!(r.events.len(), MAX_EVENTS);
        assert_eq!(r.dropped_events, 10);
        // Ring semantics: the oldest events were dropped, the newest kept.
        assert_eq!(r.events.front().unwrap().kind, "e10");
        assert_eq!(
            r.events.back().unwrap().kind,
            format!("e{}", MAX_EVENTS + 9)
        );
    }

    #[test]
    fn spill_streams_oldest_events_instead_of_dropping() {
        let _g = GATE.lock().unwrap();
        set_enabled(true);
        let spilled = std::rc::Rc::new(RefCell::new(Vec::new()));
        let sink = spilled.clone();
        let prev = set_spill(Some(Box::new(move |batch: Vec<Event>| {
            sink.borrow_mut().extend(batch);
        })));
        let (_, reg) = capture(|| {
            for i in 0..(MAX_EVENTS + 10) {
                event(&format!("e{i}"), vec![]);
            }
        });
        set_spill(prev);
        set_enabled(false);
        // Nothing dropped: the overflow went to the sink, oldest first.
        assert_eq!(reg.dropped_events, 0);
        assert_eq!(reg.spilled_events, (MAX_EVENTS / 2) as u64);
        let spilled = spilled.borrow();
        assert_eq!(spilled.len(), MAX_EVENTS / 2);
        assert_eq!(spilled[0].kind, "e0");
        assert_eq!(
            spilled[MAX_EVENTS / 2 - 1].kind,
            format!("e{}", MAX_EVENTS / 2 - 1)
        );
        // The resident buffer continues exactly where the spill ended.
        assert_eq!(
            reg.events.front().unwrap().kind,
            format!("e{}", MAX_EVENTS / 2)
        );
        assert_eq!(
            reg.events.back().unwrap().kind,
            format!("e{}", MAX_EVENTS + 9)
        );
        assert_eq!(reg.events.len() + spilled.len(), MAX_EVENTS + 10);
    }

    #[test]
    fn without_spill_sink_ring_semantics_hold() {
        let _g = GATE.lock().unwrap();
        set_enabled(true);
        let (_, reg) = capture(|| {
            for i in 0..(MAX_EVENTS + 3) {
                event(&format!("e{i}"), vec![]);
            }
        });
        set_enabled(false);
        assert_eq!(reg.dropped_events, 3);
        assert_eq!(reg.spilled_events, 0);
        assert_eq!(reg.events.front().unwrap().kind, "e3");
    }

    #[test]
    fn global_counters_accumulate_across_threads() {
        gcount("test/g", 2);
        std::thread::scope(|s| {
            s.spawn(|| gcount("test/g", 3));
        });
        assert_eq!(gcounter("test/g"), 5);
        assert_eq!(gcounters().get("test/g"), Some(&5));
        assert_eq!(gcounter("test/never"), 0);
    }

    #[test]
    fn global_counters_survive_a_poisoned_lock() {
        // A thread that panics while holding the lock poisons it; every
        // later tally must recover instead of aborting.
        let _ = std::thread::spawn(|| {
            let _guard = GLOBAL_COUNTERS.lock().unwrap();
            panic!("poison the global counter lock");
        })
        .join();
        gcount("test/poison", 1);
        gcount("test/poison", 2);
        assert_eq!(gcounter("test/poison"), 3);
        assert_eq!(gcounters().get("test/poison"), Some(&3));
    }

    #[test]
    fn record_span_matches_guard_aggregation() {
        let mut reg = Registry::default();
        reg.record_span("job/run/Schematic/crc/10000", 100);
        reg.record_span("job/run/Schematic/crc/10000", 300);
        let stats = &reg.spans["job/run/Schematic/crc/10000"];
        assert_eq!(stats.calls, 2);
        assert_eq!(stats.total_nanos, 400);
        assert_eq!(stats.hist.count(), 2);
        assert_eq!(stats.hist.max(), 300);
    }

    #[test]
    fn event_field_lookup() {
        let ev = Event {
            kind: "k".into(),
            fields: vec![
                ("a".into(), Value::U64(7)),
                ("b".into(), Value::Str("x".into())),
            ],
        };
        assert_eq!(ev.u64_field("a"), Some(7));
        assert_eq!(ev.u64_field("b"), None);
        assert_eq!(ev.field("b"), Some(&Value::Str("x".into())));
        assert_eq!(ev.field("c"), None);
    }
}
