//! In-tree structured tracing and metrics for the SCHEMATIC reproduction.
//!
//! Three primitives, all zero-dependency and cheap enough to leave
//! compiled into release binaries:
//!
//! * **Spans** — scoped wall-clock timers ([`span`]) that aggregate per
//!   name into call count, total nanoseconds and a log-linear
//!   [`Histogram`] for quantiles.
//! * **Counters** — monotonic named counters ([`count`]).
//! * **Events** — structured records ([`event`]) with ordered key/value
//!   fields, used for the emulator's intermittent-execution lifecycle
//!   stream and the compiler's decision log.
//!
//! Everything lands in a thread-local [`Registry`]. The work-stealing
//! grid driver runs each cell with [`capture`], which swaps in a fresh
//! registry for the closure and hands it back, so per-cell results are
//! identical no matter which worker thread ran the cell or in what
//! order. Registries merge deterministically ([`Registry::merge_from`]):
//! spans and counters are keyed by `BTreeMap`, histograms add
//! bucketwise, events concatenate in emission order.
//!
//! Collection is gated on a single process-global flag
//! ([`set_enabled`]). When disabled — the default — every entry point
//! reduces to one relaxed atomic load, which keeps the instrumentation
//! out of the emulator's measured hot paths.
//!
//! Span totals are inclusive wall-clock sums: spans may nest (e.g. the
//! RCG span runs inside the placement span), so per-name totals are not
//! mutually exclusive shares of the parent.

#![warn(missing_docs)]

pub mod hist;

pub use hist::Histogram;

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Hard cap on buffered events per registry. Pathological cells (tiny
/// TBPF on a large benchmark) can otherwise emit millions of lifecycle
/// events; past the cap the buffer behaves as a ring — the *oldest*
/// event is discarded (counted in [`Registry::dropped_events`]) so the
/// most recent run's lifecycle, including its closing `run_end`
/// snapshot, always survives truncation.
pub const MAX_EVENTS: usize = 1 << 17;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether collection is currently enabled. A single relaxed load, so
/// instrumentation sites stay negligible when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A field value in an [`Event`]: the repo's JSON dialect is
/// u64-and-string only, and the event stream sticks to the same shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An unsigned integer (cycles, picojoules, ids, ...).
    U64(u64),
    /// A short label (status names, variable names, ...).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// One structured record: a kind tag plus ordered key/value fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event kind, e.g. `"checkpoint_commit"` or `"alloc_pick"`.
    pub kind: String,
    /// Ordered fields; order is part of the serialized form.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// The value of field `name`, if present.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// The value of u64 field `name`, if present with that type.
    pub fn u64_field(&self, name: &str) -> Option<u64> {
        match self.field(name) {
            Some(Value::U64(v)) => Some(*v),
            _ => None,
        }
    }
}

/// Aggregated timings for one span name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of completed spans.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub total_nanos: u64,
    /// Per-call nanosecond distribution.
    pub hist: Histogram,
}

impl PhaseStats {
    fn record(&mut self, nanos: u64) {
        self.calls += 1;
        self.total_nanos = self.total_nanos.saturating_add(nanos);
        self.hist.record(nanos);
    }

    /// Folds `other` into `self`.
    pub fn merge_from(&mut self, other: &PhaseStats) {
        self.calls += other.calls;
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
        self.hist.merge_from(&other.hist);
    }
}

/// Everything one thread (or one [`capture`] scope) collected.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Span aggregates keyed by span name.
    pub spans: BTreeMap<String, PhaseStats>,
    /// Monotonic counters keyed by name.
    pub counters: BTreeMap<String, u64>,
    /// Structured events in emission order, capped at [`MAX_EVENTS`]
    /// with ring semantics (oldest dropped first).
    pub events: VecDeque<Event>,
    /// Oldest events discarded after the cap was reached.
    pub dropped_events: u64,
}

impl Registry {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.events.is_empty()
            && self.dropped_events == 0
    }

    /// Folds `other` into `self`. Keyed aggregates add; events append
    /// in `other`'s order. Merging a fixed set of registries produces
    /// the same result regardless of how the work that filled them was
    /// scheduled.
    pub fn merge_from(&mut self, other: Registry) {
        for (name, stats) in other.spans {
            self.spans.entry(name).or_default().merge_from(&stats);
        }
        for (name, n) in other.counters {
            *self.counters.entry(name).or_default() += n;
        }
        for ev in other.events {
            self.push_event(ev);
        }
        self.dropped_events += other.dropped_events;
    }

    fn push_event(&mut self, ev: Event) {
        if self.events.len() == MAX_EVENTS {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(ev);
    }
}

thread_local! {
    static LOCAL: RefCell<Registry> = RefCell::new(Registry::default());
}

/// A live span; records into the thread-local registry on drop. Created
/// by [`span`].
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Starts a scoped timer. When collection is disabled this is a single
/// atomic load and the guard is inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: enabled().then(Instant::now),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            LOCAL.with(|l| {
                l.borrow_mut()
                    .spans
                    .entry(self.name.to_string())
                    .or_default()
                    .record(nanos);
            });
        }
    }
}

/// Adds `n` to the named counter (no-op when collection is disabled).
#[inline]
pub fn count(name: &'static str, n: u64) {
    if enabled() {
        LOCAL.with(|l| {
            *l.borrow_mut().counters.entry(name.to_string()).or_default() += n;
        });
    }
}

/// Records a structured event (no-op when collection is disabled).
pub fn event(kind: &str, fields: Vec<(&str, Value)>) {
    if enabled() {
        LOCAL.with(|l| {
            l.borrow_mut().push_event(Event {
                kind: kind.to_string(),
                fields: fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            });
        });
    }
}

/// Takes the calling thread's registry, leaving an empty one behind.
pub fn take_local() -> Registry {
    LOCAL.with(|l| std::mem::take(&mut *l.borrow_mut()))
}

/// Runs `f` with a fresh thread-local registry and returns whatever it
/// recorded alongside its result. Anything the thread had collected
/// before the call is restored afterwards, so captures nest safely.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Registry) {
    let saved = take_local();
    let result = f();
    let captured = take_local();
    LOCAL.with(|l| *l.borrow_mut() = saved);
    (result, captured)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the process-global enabled flag.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _g = GATE.lock().unwrap();
        set_enabled(false);
        let (_, reg) = capture(|| {
            let _s = span("phase");
            count("hits", 3);
            event("kind", vec![("k", Value::U64(1))]);
        });
        assert!(reg.is_empty());
    }

    #[test]
    fn capture_scopes_are_isolated_and_restore() {
        let _g = GATE.lock().unwrap();
        set_enabled(true);
        let prior = take_local();
        count("outer", 1);
        let (_, inner) = capture(|| {
            count("inner", 5);
            event("e", vec![("n", Value::U64(9))]);
        });
        assert_eq!(inner.counters.get("inner"), Some(&5));
        assert_eq!(inner.counters.get("outer"), None);
        assert_eq!(inner.events.len(), 1);
        // The outer context survived the capture.
        let outer = take_local();
        assert_eq!(outer.counters.get("outer"), Some(&1));
        assert_eq!(outer.counters.get("inner"), None);
        set_enabled(false);
        LOCAL.with(|l| *l.borrow_mut() = prior);
    }

    #[test]
    fn spans_aggregate_by_name() {
        let _g = GATE.lock().unwrap();
        set_enabled(true);
        let (_, reg) = capture(|| {
            for _ in 0..4 {
                let _s = span("work");
            }
        });
        set_enabled(false);
        let stats = reg.spans.get("work").expect("span recorded");
        assert_eq!(stats.calls, 4);
        assert_eq!(stats.hist.count(), 4);
        assert!(stats.total_nanos >= stats.hist.min());
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = Registry::default();
        a.counters.insert("x".into(), 2);
        a.spans.entry("s".into()).or_default().record(100);
        a.push_event(Event {
            kind: "e1".into(),
            fields: vec![("v".into(), Value::U64(1))],
        });
        let mut b = Registry::default();
        b.counters.insert("x".into(), 3);
        b.counters.insert("y".into(), 1);
        b.spans.entry("s".into()).or_default().record(300);

        let mut ab = Registry::default();
        ab.merge_from(a.clone());
        ab.merge_from(b.clone());
        let mut ba = Registry::default();
        ba.merge_from(b);
        ba.merge_from(a);

        assert_eq!(ab.counters, ba.counters);
        assert_eq!(ab.spans, ba.spans);
        assert_eq!(ab.counters.get("x"), Some(&5));
        let s = &ab.spans["s"];
        assert_eq!(s.calls, 2);
        assert_eq!(s.total_nanos, 400);
        assert_eq!(s.hist.max(), 300);
    }

    #[test]
    fn event_cap_counts_drops() {
        let mut r = Registry::default();
        for i in 0..(MAX_EVENTS + 10) {
            r.push_event(Event {
                kind: format!("e{i}"),
                fields: Vec::new(),
            });
        }
        assert_eq!(r.events.len(), MAX_EVENTS);
        assert_eq!(r.dropped_events, 10);
        // Ring semantics: the oldest events were dropped, the newest kept.
        assert_eq!(r.events.front().unwrap().kind, "e10");
        assert_eq!(
            r.events.back().unwrap().kind,
            format!("e{}", MAX_EVENTS + 9)
        );
    }

    #[test]
    fn event_field_lookup() {
        let ev = Event {
            kind: "k".into(),
            fields: vec![
                ("a".into(), Value::U64(7)),
                ("b".into(), Value::Str("x".into())),
            ],
        };
        assert_eq!(ev.u64_field("a"), Some(7));
        assert_eq!(ev.u64_field("b"), None);
        assert_eq!(ev.field("b"), Some(&Value::Str("x".into())));
        assert_eq!(ev.field("c"), None);
    }
}
