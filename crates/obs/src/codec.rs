//! JSONL (de)serialization for [`Registry`] — the cross-process leg of
//! the observability layer.
//!
//! A worker process captures a registry, encodes it with [`encode`],
//! and ships the text to its parent (over a pipe, a file, or the
//! `gridd` frame protocol); the parent decodes with [`parse`] and folds
//! the result into its own registry via [`Registry::merge_from`]. The
//! contract is **deterministic-merge round-trip**: decoding an encoded
//! registry reproduces it exactly (`parse(encode(r)) == r`), so merging
//! decoded copies is indistinguishable from merging the originals —
//! telemetry aggregated across process boundaries equals telemetry
//! aggregated in one process.
//!
//! The wire form follows the repo's integer-JSON dialect conventions
//! (see `schematic-bench`'s `json` module): numbers are unsigned
//! integers only, objects keep insertion order so encoding is
//! deterministic, strings escape quotes/backslashes/control characters.
//! The codec carries its own minimal reader/writer because this crate
//! is intentionally zero-dependency — it must stay importable from
//! every layer, including the emulator.
//!
//! One record per line, tagged by `"t"`:
//!
//! ```text
//! {"t":"reg","codec":1,"dropped_events":0,"spilled_events":0}
//! {"t":"span","name":"cell/compile","calls":2,"total_nanos":900, ...}
//! {"t":"counter","name":"cache/miss","n":34}
//! {"t":"event","kind":"run_end","fields":[["status","completed"]]}
//! ```
//!
//! Histograms are serialized sparsely (exact tallies plus the nonzero
//! buckets), which both keeps worker lines small and makes the
//! round-trip exact — see [`crate::Histogram::from_parts`].

use crate::{Event, Histogram, PhaseStats, Registry, Value};
use std::fmt;

/// Version tag on the header line; bump on any wire-format change so a
/// mixed-version worker fleet fails loudly instead of merging garbage.
pub const CODEC_VERSION: u64 = 1;

/// Why a registry text failed to decode (with its 1-based line number).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What went wrong.
    pub message: String,
    /// 1-based line the error occurred on.
    pub line: usize,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// Minimal JSON value (the dialect subset the codec needs)
// ---------------------------------------------------------------------

/// A JSON value in the codec's dialect: unsigned integers, strings,
/// arrays, and insertion-ordered objects — no floats, no negatives.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JVal {
    U64(u64),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    fn get<'a>(&'a self, key: &str) -> Option<&'a JVal> {
        match self {
            JVal::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            JVal::U64(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            JVal::U64(n) => out.push_str(&n.to_string()),
            JVal::Str(s) => write_escaped(s, out),
            JVal::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            JVal::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, String> {
        Err(format!("{} at byte {}", message.into(), self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<JVal, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JVal::Arr(items));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(JVal::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JVal::Obj(pairs));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b'0'..=b'9') => {
                let start = self.pos;
                while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                match text.parse::<u64>() {
                    Ok(n) => Ok(JVal::U64(n)),
                    Err(_) => self.err("integer out of u64 range"),
                }
            }
            Some(_) => self.err("unexpected character (dialect is uint/string/array/object)"),
            None => self.err("unexpected end of input"),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return self.err("expected '\"'");
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return self.err("lone high surrogate");
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                let n = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(n).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return self.err("raw control character in string"),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return self.err("truncated \\u escape");
        };
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| format!("non-ASCII \\u escape at byte {}", self.pos))?;
        let n = u32::from_str_radix(text, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_line(text: &str) -> Result<JVal, String> {
        let mut p = Parser::new(text);
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing bytes after value");
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------
// Registry <-> JSONL
// ---------------------------------------------------------------------

fn obj(pairs: Vec<(&str, JVal)>) -> JVal {
    JVal::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn value_to_jval(v: &Value) -> JVal {
    match v {
        Value::U64(n) => JVal::U64(*n),
        Value::Str(s) => JVal::Str(s.clone()),
    }
}

fn jval_to_value(v: &JVal) -> Option<Value> {
    match v {
        JVal::U64(n) => Some(Value::U64(*n)),
        JVal::Str(s) => Some(Value::Str(s.clone())),
        _ => None,
    }
}

fn span_record(name: &str, stats: &PhaseStats) -> JVal {
    let buckets: Vec<JVal> = stats
        .hist
        .nonzero_buckets()
        .map(|(i, c)| JVal::Arr(vec![JVal::U64(i as u64), JVal::U64(c)]))
        .collect();
    obj(vec![
        ("t", JVal::Str("span".into())),
        ("name", JVal::Str(name.into())),
        ("calls", JVal::U64(stats.calls)),
        ("total_nanos", JVal::U64(stats.total_nanos)),
        ("count", JVal::U64(stats.hist.count())),
        ("sum", JVal::U64(stats.hist.sum())),
        ("min", JVal::U64(stats.hist.min())),
        ("max", JVal::U64(stats.hist.max())),
        ("buckets", JVal::Arr(buckets)),
    ])
}

/// Serializes a registry to JSONL: a header line, then one line per
/// span (in name order), counter (in name order), and event (in
/// emission order). Deterministic: equal registries encode to equal
/// bytes.
pub fn encode(reg: &Registry) -> String {
    let mut out = String::new();
    let mut push = |v: JVal| {
        v.encode_into(&mut out);
        out.push('\n');
    };
    push(obj(vec![
        ("t", JVal::Str("reg".into())),
        ("codec", JVal::U64(CODEC_VERSION)),
        ("dropped_events", JVal::U64(reg.dropped_events)),
        ("spilled_events", JVal::U64(reg.spilled_events)),
    ]));
    for (name, stats) in &reg.spans {
        push(span_record(name, stats));
    }
    for (name, n) in &reg.counters {
        push(obj(vec![
            ("t", JVal::Str("counter".into())),
            ("name", JVal::Str(name.clone())),
            ("n", JVal::U64(*n)),
        ]));
    }
    for ev in &reg.events {
        let fields: Vec<JVal> = ev
            .fields
            .iter()
            .map(|(k, v)| JVal::Arr(vec![JVal::Str(k.clone()), value_to_jval(v)]))
            .collect();
        push(obj(vec![
            ("t", JVal::Str("event".into())),
            ("kind", JVal::Str(ev.kind.clone())),
            ("fields", JVal::Arr(fields)),
        ]));
    }
    out
}

fn u64_field(rec: &JVal, key: &str) -> Result<u64, String> {
    rec.get(key)
        .and_then(JVal::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn str_field<'a>(rec: &'a JVal, key: &str) -> Result<&'a str, String> {
    rec.get(key)
        .and_then(JVal::as_str)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn decode_span(rec: &JVal, reg: &mut Registry) -> Result<(), String> {
    let name = str_field(rec, "name")?;
    let Some(JVal::Arr(items)) = rec.get("buckets") else {
        return Err("missing or non-array field 'buckets'".into());
    };
    let mut sparse = Vec::with_capacity(items.len());
    for item in items {
        let pair = match item {
            JVal::Arr(p) if p.len() == 2 => p,
            _ => return Err("bucket entry is not an [index, count] pair".into()),
        };
        let idx = pair[0]
            .as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or("non-integer bucket index")?;
        let c = pair[1].as_u64().ok_or("non-integer bucket count")?;
        sparse.push((idx, c));
    }
    let hist = Histogram::from_parts(
        u64_field(rec, "count")?,
        u64_field(rec, "sum")?,
        u64_field(rec, "min")?,
        u64_field(rec, "max")?,
        &sparse,
    )
    .ok_or("inconsistent histogram parts")?;
    let stats = PhaseStats {
        calls: u64_field(rec, "calls")?,
        total_nanos: u64_field(rec, "total_nanos")?,
        hist,
    };
    if reg.spans.insert(name.to_string(), stats).is_some() {
        return Err(format!("duplicate span '{name}'"));
    }
    Ok(())
}

/// Parses a registry serialized by [`encode`].
///
/// # Errors
///
/// A [`CodecError`] naming the offending line: syntax errors, a
/// missing or foreign-version header, unknown record tags, duplicate
/// keys, or inconsistent histogram parts. Garbage input is an error,
/// never a panic — worker output crosses a process boundary.
pub fn parse(text: &str) -> Result<Registry, CodecError> {
    let mut reg = Registry::default();
    let mut saw_header = false;
    for (i, line) in text.lines().enumerate() {
        let at = |message: String| CodecError {
            message,
            line: i + 1,
        };
        if line.trim().is_empty() {
            continue;
        }
        let rec = Parser::parse_line(line).map_err(at)?;
        let tag = str_field(&rec, "t").map_err(at)?.to_string();
        if !saw_header {
            if tag != "reg" {
                return Err(at("first record must be the 'reg' header".into()));
            }
            let version = u64_field(&rec, "codec").map_err(at)?;
            if version != CODEC_VERSION {
                return Err(at(format!(
                    "codec version {version} (this build reads {CODEC_VERSION})"
                )));
            }
            reg.dropped_events = u64_field(&rec, "dropped_events").map_err(at)?;
            reg.spilled_events = u64_field(&rec, "spilled_events").map_err(at)?;
            saw_header = true;
            continue;
        }
        match tag.as_str() {
            "reg" => return Err(at("duplicate 'reg' header".into())),
            "span" => decode_span(&rec, &mut reg).map_err(at)?,
            "counter" => {
                let name = str_field(&rec, "name").map_err(at)?;
                let n = u64_field(&rec, "n").map_err(at)?;
                if reg.counters.insert(name.to_string(), n).is_some() {
                    return Err(at(format!("duplicate counter '{name}'")));
                }
            }
            "event" => {
                let kind = str_field(&rec, "kind").map_err(at)?;
                let Some(JVal::Arr(items)) = rec.get("fields") else {
                    return Err(at("missing or non-array field 'fields'".into()));
                };
                let mut fields = Vec::with_capacity(items.len());
                for item in items {
                    let pair = match item {
                        JVal::Arr(p) if p.len() == 2 => p,
                        _ => return Err(at("event field is not a [name, value] pair".into())),
                    };
                    let key = pair[0]
                        .as_str()
                        .ok_or_else(|| at("non-string event field name".into()))?;
                    let value = jval_to_value(&pair[1])
                        .ok_or_else(|| at("event field value is not uint or string".into()))?;
                    fields.push((key.to_string(), value));
                }
                reg.events.push_back(Event {
                    kind: kind.to_string(),
                    fields,
                });
            }
            other => return Err(at(format!("unknown record tag '{other}'"))),
        }
    }
    if !saw_header {
        return Err(CodecError {
            message: "empty input (no 'reg' header)".into(),
            line: 1,
        });
    }
    if reg.events.len() > crate::MAX_EVENTS {
        return Err(CodecError {
            message: format!(
                "{} events exceed the {} ring cap",
                reg.events.len(),
                crate::MAX_EVENTS
            ),
            line: 1,
        });
    }
    Ok(reg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — the deterministic fuzz driver (same recurrence as
    /// the service-frame and soundness fuzzes).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        fn label(&mut self) -> String {
            const POOL: [&str; 8] = [
                "cell/compile",
                "cell/emulate",
                "job/run/Schematic/crc/10000",
                "cache/hit",
                "dæmon/ünïcode",
                "quote\"back\\slash",
                "ctrl\n\t\u{1}",
                "emoji \u{1F600}",
            ];
            format!("{}#{}", POOL[self.below(8) as usize], self.below(4))
        }

        fn registry(&mut self) -> Registry {
            let mut reg = Registry::default();
            for _ in 0..self.below(5) {
                let name = self.label();
                let stats = reg.spans.entry(name).or_default();
                for _ in 0..(1 + self.below(6)) {
                    // Spread samples across the full bucket range.
                    let v = self.next() >> self.below(64);
                    stats.calls += 1;
                    stats.total_nanos = stats.total_nanos.saturating_add(v);
                    stats.hist.record(v);
                }
            }
            for _ in 0..self.below(5) {
                let name = self.label();
                // Bounded increments: counters add on merge, and the
                // production sites count events, not raw u64 noise.
                *reg.counters.entry(name).or_default() += self.below(1 << 40);
            }
            for _ in 0..self.below(6) {
                let kind = self.label();
                let mut fields = Vec::new();
                for _ in 0..self.below(4) {
                    let key = self.label();
                    let value = if self.below(2) == 0 {
                        Value::U64(self.next())
                    } else {
                        Value::Str(self.label())
                    };
                    fields.push((key, value));
                }
                reg.events.push_back(Event { kind, fields });
            }
            reg.dropped_events = self.below(3);
            reg.spilled_events = self.below(3);
            reg
        }
    }

    #[test]
    fn empty_registry_roundtrips() {
        let reg = Registry::default();
        let text = encode(&reg);
        assert_eq!(parse(&text).unwrap(), reg);
    }

    #[test]
    fn fuzz_roundtrip_is_exact() {
        let mut rng = Rng(0x0B5C0DEC);
        for round in 0..200 {
            let reg = rng.registry();
            let text = encode(&reg);
            let back = parse(&text).unwrap_or_else(|e| panic!("round {round}: {e}"));
            assert_eq!(back, reg, "round {round}");
            // Encoding is deterministic.
            assert_eq!(encode(&back), text, "round {round}");
        }
    }

    #[test]
    fn fuzz_merge_parity_across_the_wire() {
        // Folding decoded copies must equal folding the originals: the
        // property that makes daemon-side aggregation of worker
        // registries indistinguishable from in-process aggregation.
        let mut rng = Rng(0x4D45_5247);
        for round in 0..100 {
            let parts: Vec<Registry> = (0..(1 + rng.below(4))).map(|_| rng.registry()).collect();
            let mut direct = Registry::default();
            let mut via_wire = Registry::default();
            for part in &parts {
                direct.merge_from(part.clone());
                via_wire.merge_from(parse(&encode(part)).unwrap());
            }
            assert_eq!(via_wire, direct, "round {round}");
            // And the merged result itself still round-trips.
            assert_eq!(parse(&encode(&direct)).unwrap(), direct, "round {round}");
        }
    }

    #[test]
    fn fuzz_garbage_never_panics() {
        let mut rng = Rng(0xBADBAD);
        for _ in 0..500 {
            let len = rng.below(128) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xFF) as u8).collect();
            let text = String::from_utf8_lossy(&bytes);
            // Whatever comes back, it must be a value, not a panic.
            let _ = parse(&text);
        }
        // Structured near-misses.
        for bad in [
            "",
            "\n\n",
            "{\"t\":\"span\"}",
            "{\"t\":\"reg\",\"codec\":99,\"dropped_events\":0,\"spilled_events\":0}",
            "{\"t\":\"reg\",\"codec\":1,\"dropped_events\":0,\"spilled_events\":0}\n{\"t\":\"wat\"}",
            "{\"t\":\"reg\",\"codec\":1,\"dropped_events\":0,\"spilled_events\":0}\n\
             {\"t\":\"span\",\"name\":\"s\",\"calls\":1,\"total_nanos\":1,\"count\":2,\
             \"sum\":1,\"min\":1,\"max\":1,\"buckets\":[[0,1]]}",
            "{\"t\":\"reg\",\"codec\":1,\"dropped_events\":0,\"spilled_events\":0}\n\
             {\"t\":\"counter\",\"name\":\"x\",\"n\":1}\n{\"t\":\"counter\",\"name\":\"x\",\"n\":2}",
            "{\"t\":\"reg\",\"codec\":1,\"dropped_events\":0,\"spilled_events\":0}\n{\"t\":\"event\"}",
            "[1,2,3]",
            "{\"t\":\"reg\",\"codec\":1,\"dropped_events\":-1,\"spilled_events\":0}",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn truncation_of_valid_text_never_panics() {
        let mut rng = Rng(0x7A7A);
        let reg = rng.registry();
        let text = encode(&reg);
        for cut in 0..text.len() {
            if text.is_char_boundary(cut) {
                let _ = parse(&text[..cut]);
            }
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut reg = Registry::default();
        reg.counters.insert(
            "quote\" slash\\ nl\n tab\t nul\u{0} uni † \u{1F600}".into(),
            7,
        );
        let text = encode(&reg);
        assert_eq!(parse(&text).unwrap(), reg);
        // The encoded form is a single well-formed line per record.
        assert_eq!(text.lines().count(), 2);
    }
}
