//! Log-linear histogram over `u64` samples.
//!
//! The bucket layout is HdrHistogram-shaped: values below 16 get exact
//! buckets, and every power-of-two range above that is split into 16
//! sub-buckets, so relative error is bounded by 1/16 (~6 %) across the
//! full `u64` range with a fixed 976-bucket footprint. That is plenty
//! for the quantities the repo records — span nanoseconds, throughput
//! samples — while keeping merges a plain bucketwise add, which is what
//! makes per-thread collectors combine deterministically regardless of
//! worker count or completion order.

/// Sub-buckets per power-of-two range (and the width of the exact
/// low-value range).
const SUB: usize = 16;
/// log2 of [`SUB`].
const SUB_BITS: u32 = 4;
/// Total bucket count: the exact group plus one group per MSB position
/// 4..=63.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// The bucket index of `v`.
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (msb - SUB_BITS + 1) as usize * SUB + sub
}

/// The smallest value that maps to bucket `idx` (the bucket's
/// representative when reporting quantiles).
fn bucket_floor(idx: usize) -> u64 {
    let group = idx / SUB;
    let sub = (idx % SUB) as u64;
    if group == 0 {
        return sub;
    }
    let msb = group as u32 + SUB_BITS - 1;
    (1u64 << msb) + (sub << (msb - SUB_BITS))
}

/// A mergeable log-linear histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`0` when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean rounded down (`0` when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `num/den` quantile (e.g. `quantile(95, 100)` for p95),
    /// resolved to the floor of the bucket holding that rank and clamped
    /// to the exact observed `[min, max]`. Integer arithmetic only, so
    /// the result is identical on every host.
    ///
    /// # Panics
    ///
    /// Panics when `den == 0` or `num > den`.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0 && num <= den, "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        if num == den {
            return self.max;
        }
        // Zero-indexed rank of the requested quantile.
        let rank = num * (self.count - 1) / den;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_floor(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The nonzero buckets as `(index, count)` pairs, in index order —
    /// the sparse form the registry codec serializes (976 buckets,
    /// almost all zero for typical span distributions).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }

    /// Rebuilds a histogram from its serialized parts: exact tallies
    /// plus the sparse bucket list from [`Histogram::nonzero_buckets`].
    /// `None` when the parts are inconsistent — an out-of-range bucket
    /// index, an overflowing count, or buckets that do not sum to
    /// `count` — so a corrupt record is a decode error, never a panic.
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        sparse: &[(usize, u64)],
    ) -> Option<Histogram> {
        let mut h = Histogram::new();
        let mut total = 0u64;
        for &(idx, c) in sparse {
            if idx >= BUCKETS {
                return None;
            }
            h.buckets[idx] = h.buckets[idx].checked_add(c)?;
            total = total.checked_add(c)?;
        }
        if total != count {
            return None;
        }
        h.count = count;
        h.sum = sum;
        // The empty histogram's internal min is the identity for `min`
        // merges; the accessor reports 0, which is what gets encoded.
        h.min = if count == 0 { u64::MAX } else { min };
        h.max = max;
        Some(h)
    }

    /// Folds `other` into `self`: bucketwise adds, so merging is
    /// commutative and associative — the deterministic-merge property
    /// the parallel driver relies on.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut last = 0;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket order broke at {v}");
            assert!(b < BUCKETS);
            assert!(bucket_floor(b) <= v, "floor of bucket {b} exceeds {v}");
            last = b;
        }
    }

    #[test]
    fn exact_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(bucket_floor(bucket_of(v)), v);
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(50, 100);
        let p95 = h.quantile(95, 100);
        // Bucketed resolution: within one 1/16 sub-bucket of the truth.
        assert!((450..=512).contains(&p50), "p50 = {p50}");
        assert!((896..=1000).contains(&p95), "p95 = {p95}");
        assert!(p50 <= p95);
        assert_eq!(h.quantile(0, 100), 1);
        assert_eq!(h.quantile(100, 100), 1000);
    }

    #[test]
    fn merge_equals_single_recording() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..500u64 {
            all.record(v * 7);
            if v % 2 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
        }
        // Merge in both orders: identical to recording everything into
        // one histogram.
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all);
    }

    #[test]
    fn sparse_parts_roundtrip_exactly() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 17, 1000, 1 << 30, u64::MAX] {
            h.record(v);
        }
        let sparse: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        let rebuilt = Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), &sparse).unwrap();
        assert_eq!(rebuilt, h);
        // Merging a rebuilt copy equals merging the original.
        let mut via_rebuilt = Histogram::new();
        via_rebuilt.merge_from(&rebuilt);
        let mut via_original = Histogram::new();
        via_original.merge_from(&h);
        assert_eq!(via_rebuilt, via_original);
        // The empty histogram round-trips through its accessor values.
        let empty = Histogram::new();
        assert_eq!(
            Histogram::from_parts(0, 0, empty.min(), empty.max(), &[]).unwrap(),
            empty
        );
    }

    #[test]
    fn inconsistent_parts_are_rejected() {
        // Out-of-range index.
        assert!(Histogram::from_parts(1, 5, 5, 5, &[(BUCKETS, 1)]).is_none());
        // Buckets that do not sum to the count.
        assert!(Histogram::from_parts(3, 5, 5, 5, &[(2, 1)]).is_none());
        // Overflowing bucket totals.
        assert!(Histogram::from_parts(u64::MAX, 0, 0, 0, &[(0, u64::MAX), (1, 1)]).is_none());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(95, 100), 0);
    }
}
