//! `schematic` — command-line front end: compile a textual-IR program
//! for intermittent execution and (optionally) simulate it.
//!
//! ```text
//! schematic <file.ir> [--tbpf N] [--svm BYTES] [--all-nvm] [--emit] [--run]
//!
//!   --tbpf N     time between power failures in cycles (default 10000);
//!                EB is derived as N x 300 pJ
//!   --svm BYTES  volatile memory capacity (default 2048)
//!   --all-nvm    disable VM allocation (the Fig. 7 ablation)
//!   --emit       print the instrumented IR
//!   --dot        print the instrumented CFGs as a Graphviz digraph
//!   --run        simulate under periodic power failures and report the
//!                Figure-6-style energy breakdown
//! ```

use schematic_repro::emu::{Machine, RunConfig};
use schematic_repro::energy::{CostTable, Energy};
use schematic_repro::ir::{parse_module, print_module};
use schematic_repro::schematic::{compile, SchematicConfig};
use std::process::ExitCode;

struct Args {
    file: String,
    tbpf: u64,
    svm: usize,
    all_nvm: bool,
    emit: bool,
    dot: bool,
    run: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        tbpf: 10_000,
        svm: 2048,
        all_nvm: false,
        emit: false,
        dot: false,
        run: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tbpf" => {
                args.tbpf = it
                    .next()
                    .ok_or("--tbpf needs a value")?
                    .parse()
                    .map_err(|e| format!("--tbpf: {e}"))?;
            }
            "--svm" => {
                args.svm = it
                    .next()
                    .ok_or("--svm needs a value")?
                    .parse()
                    .map_err(|e| format!("--svm: {e}"))?;
            }
            "--all-nvm" => args.all_nvm = true,
            "--emit" => args.emit = true,
            "--dot" => args.dot = true,
            "--run" => args.run = true,
            "--help" | "-h" => return Err("help".into()),
            f if !f.starts_with('-') && args.file.is_empty() => args.file = f.to_string(),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.file.is_empty() {
        return Err("missing input file".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: schematic <file.ir> [--tbpf N] [--svm BYTES] [--all-nvm] [--emit] [--dot] [--run]"
            );
            return ExitCode::from(2);
        }
    };

    let source = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let module = match parse_module(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };

    let table = CostTable::msp430fr5969();
    let eb = Energy::from_pj(table.cpu_pj_per_cycle) * args.tbpf;
    let mut config = SchematicConfig::new(eb);
    config.svm_bytes = if args.all_nvm { 0 } else { args.svm };

    let compiled = match compile(&module, &table, &config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("placement failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // With --emit/--dot, stdout carries the machine-readable artifact
    // (so `schematic x.ir --dot | dot -Tsvg` works); status goes to
    // stderr in that case.
    let status_to_stderr = args.emit || args.dot;
    let status = |line: String| {
        if status_to_stderr {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    status(format!("module `{}`", module.name));
    status(format!(
        "  EB = {eb} (TBPF {} cycles), SVM = {} B",
        args.tbpf, config.svm_bytes
    ));
    status(format!(
        "  checkpoints: {} ({} added by the repair pass)",
        compiled.instrumented.checkpoints.len(),
        compiled.repairs
    ));
    status(format!(
        "  worst inter-checkpoint interval: {} (budget {eb})",
        compiled.report.max_interval
    ));
    status(format!(
        "  peak planned VM: {} B",
        compiled
            .instrumented
            .plan
            .peak_bytes(&compiled.instrumented.module)
    ));

    if args.emit {
        print!("{}", print_module(&compiled.instrumented.module));
        for (i, cp) in compiled.instrumented.checkpoints.iter().enumerate() {
            println!(
                "; cp{i}: save {:?} restore {:?}",
                cp.save_vars, cp.restore_vars
            );
        }
    }

    if args.dot {
        print!(
            "{}",
            schematic_repro::ir::dot::module_to_dot(&compiled.instrumented.module)
        );
    }

    if args.run {
        let out = match Machine::new(
            &compiled.instrumented,
            &table,
            RunConfig::periodic(args.tbpf),
        )
        .run()
        {
            Ok(o) => o,
            Err(e) => {
                eprintln!("runtime error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "\n--- intermittent run (failure every {} cycles) ---",
            args.tbpf
        );
        println!("  status: {:?}, result: {:?}", out.status, out.result);
        let m = &out.metrics;
        println!(
            "  power failures: {}, checkpoints committed: {}, sleeps: {}",
            m.power_failures, m.checkpoints_committed, m.sleep_events
        );
        println!(
            "  energy: computation {} | save {} | restore {} | re-execution {} | total {}",
            m.computation,
            m.save,
            m.restore,
            m.reexecution,
            m.total_energy()
        );
        println!(
            "  VM accesses: {:.0} % of all variable accesses",
            100.0 * m.vm_access_fraction()
        );
    }
    ExitCode::SUCCESS
}
