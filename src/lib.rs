//! # schematic-repro
//!
//! Facade crate for the SCHEMATIC reproduction (CGO 2024). Re-exports the
//! workspace crates under stable names so examples and integration tests
//! can depend on a single package:
//!
//! * [`ir`] — intermediate representation and analyses;
//! * [`energy`] — energy units, MSP430-like cost model, WCEC;
//! * [`emu`] — intermittent-computing emulator (SCEPTIC substitute);
//! * [`schematic`] — the paper's technique (joint checkpoint placement
//!   and memory allocation);
//! * [`baselines`] — RATCHET, MEMENTOS, ROCKCLIMB, ALFRED;
//! * [`benchsuite`] — the eight MiBench2-like benchmark kernels.
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the system
//! inventory and experiment index.

pub use schematic_baselines as baselines;
pub use schematic_benchsuite as benchsuite;
pub use schematic_core as schematic;
pub use schematic_emu as emu;
pub use schematic_energy as energy;
pub use schematic_ir as ir;
