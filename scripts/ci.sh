#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# No network access is required (the workspace has no external deps).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test --workspace --offline -q

echo "CI gate passed."
