#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# No network access is required (the workspace has no external deps).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test --workspace --offline -q

echo "== soundcheck --quick (release) =="
# Static WAR-hazard sweep of Schematic + Ratchet over all 8 benchmarks;
# exits nonzero if any inter-checkpoint region classifies as hazardous.
cargo run --release --offline -p schematic-bench --bin soundcheck -- --quick

echo "== gridrun shard/merge smoke (release) =="
# Two-shard run of the quick experiment grid through the serialized
# cell-artifact pipeline: compute both shards as separate invocations,
# merge the JSONL artifacts, and require the merged render to be
# byte-identical to the single-process render. Then the same through
# --spawn, which drives real child processes and self-asserts parity.
GRIDDIR="$(mktemp -d)"
trap 'rm -rf "$GRIDDIR"' EXIT
cargo build --release --offline -p schematic-bench --bin gridrun
GRIDRUN=target/release/gridrun
"$GRIDRUN" --quick --shard 0/2 -o "$GRIDDIR/shard_0.jsonl"
"$GRIDRUN" --quick --shard 1/2 -o "$GRIDDIR/shard_1.jsonl"
"$GRIDRUN" --quick --merge "$GRIDDIR"/shard_*.jsonl > "$GRIDDIR/merged.txt"
"$GRIDRUN" --quick > "$GRIDDIR/direct.txt"
diff -u "$GRIDDIR/direct.txt" "$GRIDDIR/merged.txt"
echo "merged 2-shard render byte-identical to single-process render"
"$GRIDRUN" --quick --spawn 2 > /dev/null

echo "== tracereport smoke (release) =="
# Trace the quick grid, render the observability report, and require a
# non-empty render that parses cleanly. The traced render must stay
# byte-identical to the untraced one (tracing is observation-only).
cargo build --release --offline -p schematic-bench --bin tracereport
TRACEREPORT=target/release/tracereport
"$GRIDRUN" --quick --trace "$GRIDDIR/trace.jsonl" > "$GRIDDIR/traced.txt"
diff -u "$GRIDDIR/direct.txt" "$GRIDDIR/traced.txt"
echo "traced render byte-identical to untraced render"
"$TRACEREPORT" "$GRIDDIR/trace.jsonl" --cell run/Schematic/crc/10000 --top 5 \
  > "$GRIDDIR/tracereport.txt"
test -s "$GRIDDIR/tracereport.txt"
grep -q "Phase times across the grid" "$GRIDDIR/tracereport.txt"
grep -q "Fig. 6 split" "$GRIDDIR/tracereport.txt"
echo "tracereport rendered $(wc -l < "$GRIDDIR/tracereport.txt") lines"
# A trace diffed against itself must report zero regressed cells and
# exit 0 (exit 1 is the flagged-regression signal for CI gating).
"$TRACEREPORT" --diff "$GRIDDIR/trace.jsonl" "$GRIDDIR/trace.jsonl" \
  > "$GRIDDIR/tracediff.txt"
grep -q "verdict: OK" "$GRIDDIR/tracediff.txt"
echo "tracereport --diff self-comparison clean"

echo "== perfsmoke --quick (release) =="
# Surfaces hot-path throughput in the CI log and enforces the emulator
# speedup floor (SPEEDUP_FLOOR in perfsmoke) against the pre-tier-ladder
# baseline, without rewriting BENCH_perf.json (quick windows jitter too
# much to commit; re-baseline with a full `perfsmoke` run instead).
SCHEMATIC_PERF_ASSERT=1 \
  cargo run --release --offline -p schematic-bench --bin perfsmoke -- --quick

echo "CI gate passed."
