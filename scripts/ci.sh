#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# No network access is required (the workspace has no external deps).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test --workspace --offline -q

GRIDDIR="$(mktemp -d)"
trap 'rm -rf "$GRIDDIR"' EXIT

echo "== soundcheck --quick --explain (release) =="
# Static WAR-hazard sweep of Schematic + Ratchet over all 8 benchmarks;
# exits nonzero if any inter-checkpoint region classifies as hazardous.
# The per-region explanation appends a greppable region-class histogram
# (`^hist ` lines) which must match the checked-in golden exactly —
# any classification drift (a region changing class under the
# index-sensitive analysis) fails CI until the golden is re-recorded:
#   cargo run --release -p schematic-bench --bin soundcheck -- \
#     --quick --explain | grep '^hist ' > tests/goldens/region_classes.txt
cargo run --release --offline -p schematic-bench --bin soundcheck -- \
  --quick --explain > "$GRIDDIR/soundcheck.txt"
grep '^hist ' "$GRIDDIR/soundcheck.txt" > "$GRIDDIR/region_classes.txt"
diff -u tests/goldens/region_classes.txt "$GRIDDIR/region_classes.txt"
echo "region-class histogram matches tests/goldens/region_classes.txt"

echo "== gridrun shard/merge smoke (release) =="
# Two-shard run of the quick experiment grid through the serialized
# cell-artifact pipeline: compute both shards as separate invocations,
# merge the JSONL artifacts, and require the merged render to be
# byte-identical to the single-process render. Then the same through
# --spawn, which drives real child processes and self-asserts parity.
cargo build --release --offline -p schematic-bench --bin gridrun
GRIDRUN=target/release/gridrun
"$GRIDRUN" --quick --shard 0/2 -o "$GRIDDIR/shard_0.jsonl"
"$GRIDRUN" --quick --shard 1/2 -o "$GRIDDIR/shard_1.jsonl"
"$GRIDRUN" --quick --merge "$GRIDDIR"/shard_*.jsonl > "$GRIDDIR/merged.txt"
"$GRIDRUN" --quick > "$GRIDDIR/direct.txt"
diff -u "$GRIDDIR/direct.txt" "$GRIDDIR/merged.txt"
echo "merged 2-shard render byte-identical to single-process render"
"$GRIDRUN" --quick --spawn 2 > /dev/null

echo "== tracereport smoke (release) =="
# Trace the quick grid, render the observability report, and require a
# non-empty render that parses cleanly. The traced render must stay
# byte-identical to the untraced one (tracing is observation-only).
cargo build --release --offline -p schematic-bench --bin tracereport
TRACEREPORT=target/release/tracereport
"$GRIDRUN" --quick --trace "$GRIDDIR/trace.jsonl" > "$GRIDDIR/traced.txt"
diff -u "$GRIDDIR/direct.txt" "$GRIDDIR/traced.txt"
echo "traced render byte-identical to untraced render"
"$TRACEREPORT" "$GRIDDIR/trace.jsonl" --cell run/Schematic/crc/10000 --top 5 \
  > "$GRIDDIR/tracereport.txt"
test -s "$GRIDDIR/tracereport.txt"
grep -q "Phase times across the grid" "$GRIDDIR/tracereport.txt"
grep -q "Fig. 6 split" "$GRIDDIR/tracereport.txt"
echo "tracereport rendered $(wc -l < "$GRIDDIR/tracereport.txt") lines"
# A trace diffed against itself must report zero regressed cells and
# exit 0 (exit 1 is the flagged-regression signal for CI gating).
"$TRACEREPORT" --diff "$GRIDDIR/trace.jsonl" "$GRIDDIR/trace.jsonl" \
  > "$GRIDDIR/tracediff.txt"
grep -q "verdict: OK" "$GRIDDIR/tracediff.txt"
echo "tracereport --diff self-comparison clean"

echo "== gridrun cache + resume smoke (release) =="
# Cold in-process run populates a fresh content-addressed cell cache
# (shard/worker modes never touch it by design); a warm verified rerun
# must serve every cell as a hit (0 computed) and render
# byte-identically. Resuming a cache-less half-grid shard artifact must
# then complete the other half purely from cache hits.
CACHE="$GRIDDIR/cache.jsonl"
"$GRIDRUN" --quick --cache "$CACHE" > "$GRIDDIR/cold.txt" 2> "$GRIDDIR/cold.log"
grep -q "0 hits" "$GRIDDIR/cold.log"
diff -u "$GRIDDIR/direct.txt" "$GRIDDIR/cold.txt"
"$GRIDRUN" --quick --cache "$CACHE" --cache-verify \
  > "$GRIDDIR/warm.txt" 2> "$GRIDDIR/warm.log"
grep -q ", 0 computed (hits verified)" "$GRIDDIR/warm.log"
diff -u "$GRIDDIR/direct.txt" "$GRIDDIR/warm.txt"
echo "warm rerun served every cell from cache (verified), render byte-identical"
"$GRIDRUN" --quick --shard 0/1 -o "$GRIDDIR/full.jsonl"
"$GRIDRUN" --quick --cache "$CACHE" --resume "$GRIDDIR/full.jsonl" \
  > "$GRIDDIR/resumed.txt" 2> "$GRIDDIR/resume.log"
grep -q "0 missing computed" "$GRIDDIR/resume.log"
diff -u "$GRIDDIR/direct.txt" "$GRIDDIR/resumed.txt"
echo "complete-artifact resume computed 0 cells, render byte-identical"
"$GRIDRUN" --quick --shard 0/2 -o "$GRIDDIR/half.jsonl"
"$GRIDRUN" --quick --cache "$CACHE" --resume "$GRIDDIR/half.jsonl" \
  > "$GRIDDIR/resumed_half.txt" 2> "$GRIDDIR/resume_half.log"
grep -q ", 0 computed" "$GRIDDIR/resume_half.log"
diff -u "$GRIDDIR/direct.txt" "$GRIDDIR/resumed_half.txt"
echo "partial-artifact resume completed from cache hits, render byte-identical"

echo "== robustness report smoke (release) =="
# The multi-seed robustness report over 2 stochastic seeds plus every
# recorded trace in traces/, computed twice through a fresh cache: the
# warm rerun must answer every scenario cell from the cache (verified)
# and render byte-identically, and the stable header line must parse.
RCACHE="$GRIDDIR/robust-cache.jsonl"
"$GRIDRUN" --report robust --seeds 2 --cache "$RCACHE" \
  > "$GRIDDIR/robust.txt" 2> "$GRIDDIR/robust.log"
grep -q "^Robustness report: 2 stochastic seed(s)" "$GRIDDIR/robust.txt"
grep -q "stoch:10000:2000:1" "$GRIDDIR/robust.txt"
grep -q "trace:" "$GRIDDIR/robust.txt" \
  || { echo "no recorded trace on the robustness axis"; exit 1; }
"$GRIDRUN" --report robust --seeds 2 --cache "$RCACHE" --cache-verify \
  > "$GRIDDIR/robust_warm.txt" 2> "$GRIDDIR/robust_warm.log"
grep -q ", 0 computed (hits verified)" "$GRIDDIR/robust_warm.log"
diff -u "$GRIDDIR/robust.txt" "$GRIDDIR/robust_warm.txt"
echo "robustness report deterministic; scenario cells replayed from cache (verified)"

echo "== gridd daemon loopback smoke (release) =="
# Start the evaluation daemon on an ephemeral loopback port with two
# worker processes, drive one submit/status/stats/fetch/shutdown cycle
# through the gridrun client, and require the fetched cells to render
# byte-identically to the direct in-process run. The stats op must
# report merged worker telemetry whose cache hit/miss totals exactly
# equal the submitted job count — all misses on the cold daemon, all
# hits on a warm restart over the populated cache file.
cargo build --release --offline -p schematic-bench --bin gridd
GRIDD=target/release/gridd
JOBS="$("$GRIDRUN" --quick --list | wc -l | tr -d ' ')"

# Boots a daemon over the shared cache file; sets ADDR and GRIDD_PID.
start_gridd() {
  local out=$1
  "$GRIDD" --quick --addr 127.0.0.1:0 \
    --cache "$GRIDDIR/gridd-cache.jsonl" --workers 2 \
    > "$out" 2> "$GRIDDIR/gridd.err" &
  GRIDD_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^gridd: listening on //p' "$out")"
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  test -n "$ADDR" || { echo "gridd never reported its address"; exit 1; }
}

# Every exposition line must match the stable grammar.
check_expo() {
  test -s "$1" || { echo "$1: empty exposition output"; exit 1; }
  if grep -qvE '^[a-z_]+(\{[^}]*\})? [0-9]+$' "$1"; then
    echo "$1: malformed exposition line(s):"
    grep -vE '^[a-z_]+(\{[^}]*\})? [0-9]+$' "$1"
    exit 1
  fi
}

# Prints a gridd_counter_total value from an exposition dump (0 when
# the counter never fired).
expo_counter() {
  local v
  v="$(sed -n "s|^gridd_counter_total{name=\"$2\"} ||p" "$1")"
  echo "${v:-0}"
}

start_gridd "$GRIDDIR/gridd.out"
"$GRIDRUN" --quick --connect "$ADDR" --submit all
"$GRIDRUN" --quick --connect "$ADDR" --status
"$GRIDRUN" --quick --connect "$ADDR" --stats > "$GRIDDIR/stats_cold.txt"
grep -q "^gridd stats:" "$GRIDDIR/stats_cold.txt"
grep -q "service registry:" "$GRIDDIR/stats_cold.txt"
"$GRIDRUN" --quick --connect "$ADDR" --stats --format expo \
  -o "$GRIDDIR/service_reg.txt" > "$GRIDDIR/expo_cold.txt"
check_expo "$GRIDDIR/expo_cold.txt"
HITS="$(expo_counter "$GRIDDIR/expo_cold.txt" "cache/hit")"
MISSES="$(expo_counter "$GRIDDIR/expo_cold.txt" "cache/miss")"
test "$((HITS + MISSES))" -eq "$JOBS" \
  || { echo "cold stats: hits($HITS)+misses($MISSES) != $JOBS jobs"; exit 1; }
test "$MISSES" -eq "$JOBS" \
  || { echo "cold daemon should miss every cell, got $MISSES of $JOBS"; exit 1; }
# Worker telemetry crossed the process boundary: one job_wall sample
# and one dispatched job per submitted cell.
grep -q '^gridd_span_calls_total{name="service/job_wall"} '"$JOBS"'$' \
  "$GRIDDIR/expo_cold.txt"
grep -q "^gridd_worker_jobs_total $JOBS\$" "$GRIDDIR/expo_cold.txt"
# The dumped registry renders offline.
"$TRACEREPORT" --service "$GRIDDIR/service_reg.txt" --top 3 \
  > "$GRIDDIR/service_report.txt"
grep -q "slowest jobs" "$GRIDDIR/service_report.txt"
grep -q "cache hit rate by report kind" "$GRIDDIR/service_report.txt"
"$GRIDRUN" --quick --connect "$ADDR" --fetch -o "$GRIDDIR/fetched.jsonl"
"$GRIDRUN" --quick --merge "$GRIDDIR/fetched.jsonl" > "$GRIDDIR/gridd.txt"
diff -u "$GRIDDIR/direct.txt" "$GRIDDIR/gridd.txt"
"$GRIDRUN" --quick --connect "$ADDR" --shutdown
wait "$GRIDD_PID"
echo "cold daemon: $MISSES misses across $JOBS jobs, telemetry merged from 2 workers"

# Warm restart: a fresh daemon over the populated cache answers every
# cell from it — stats must show hits == jobs and zero misses.
start_gridd "$GRIDDIR/gridd_warm.out"
"$GRIDRUN" --quick --connect "$ADDR" --submit all
"$GRIDRUN" --quick --connect "$ADDR" --stats --format expo > "$GRIDDIR/expo_warm.txt"
check_expo "$GRIDDIR/expo_warm.txt"
HITS="$(expo_counter "$GRIDDIR/expo_warm.txt" "cache/hit")"
MISSES="$(expo_counter "$GRIDDIR/expo_warm.txt" "cache/miss")"
test "$HITS" -eq "$JOBS" \
  || { echo "warm daemon should hit every cell, got $HITS of $JOBS"; exit 1; }
test "$MISSES" -eq 0 \
  || { echo "warm daemon recomputed $MISSES cells"; exit 1; }
"$GRIDRUN" --quick --connect "$ADDR" --shutdown
wait "$GRIDD_PID"
echo "warm daemon: $HITS hits across $JOBS jobs, 0 misses"
echo "daemon submit/status/stats/fetch/shutdown loopback clean"

echo "== perfsmoke --quick (release) =="
# Surfaces hot-path throughput in the CI log and enforces the emulator
# speedup floor (SPEEDUP_FLOOR in perfsmoke) against the pre-tier-ladder
# baseline, without rewriting BENCH_perf.json (quick windows jitter too
# much to commit; re-baseline with a full `perfsmoke` run instead).
SCHEMATIC_PERF_ASSERT=1 \
  cargo run --release --offline -p schematic-bench --bin perfsmoke -- --quick

echo "CI gate passed."
