#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# No network access is required (the workspace has no external deps).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test --workspace --offline -q

echo "== soundcheck --quick (release) =="
# Static WAR-hazard sweep of Schematic + Ratchet over all 8 benchmarks;
# exits nonzero if any inter-checkpoint region classifies as hazardous.
cargo run --release --offline -p schematic-bench --bin soundcheck -- --quick

echo "== perfsmoke --quick (release) =="
# Surfaces hot-path throughput in the CI log without rewriting
# BENCH_perf.json (quick windows jitter too much to commit). Set
# SCHEMATIC_PERF_ASSERT=1 in the environment to also enforce the
# 1.5x emulator speedup floor.
cargo run --release --offline -p schematic-bench --bin perfsmoke -- --quick

echo "CI gate passed."
