//! Capacitor sizing study (the workflow behind the paper's §IV-F and
//! §VI discussion): sweep the energy buffer size for one application and
//! report how checkpoint count, energy overhead and completion latency
//! respond — the data a designer needs to pick the smallest viable
//! capacitor.
//!
//! ```text
//! cargo run --release --example capacitor_sizing
//! ```

use schematic_repro::benchsuite;
use schematic_repro::emu::{Machine, RunConfig};
use schematic_repro::energy::{CostTable, Energy};
use schematic_repro::schematic::{compile, SchematicConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchsuite::by_name("crc").expect("crc exists");
    let module = (bench.build)(7);
    let table = CostTable::msp430fr5969();

    println!(
        "capacitor sizing for `crc` (expected result {})\n",
        (bench.oracle)(7)
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "TBPF", "EB", "checkpoints", "sleeps", "overhead (uJ)", "total (uJ)"
    );

    for tbpf in [800u64, 1_500, 3_000, 6_000, 12_000, 25_000, 50_000, 100_000] {
        let eb = Energy::from_pj(table.cpu_pj_per_cycle) * tbpf;
        let compiled = match compile(&module, &table, &SchematicConfig::new(eb)) {
            Ok(c) => c,
            Err(e) => {
                println!(
                    "{tbpf:>10} {:>10} capacitor too small: {e}",
                    format!("{eb}")
                );
                continue;
            }
        };
        let out = Machine::new(&compiled.instrumented, &table, RunConfig::periodic(tbpf)).run()?;
        assert_eq!(out.result, Some((bench.oracle)(7)));
        let overhead = out.metrics.save + out.metrics.restore + out.metrics.reexecution;
        println!(
            "{tbpf:>10} {:>10} {:>12} {:>12} {:>14.3} {:>12.3}",
            format!("{eb}"),
            compiled.instrumented.checkpoints.len(),
            out.metrics.sleep_events,
            overhead.as_uj(),
            out.metrics.total_energy().as_uj(),
        );
    }
    println!(
        "\nLarger capacitors need fewer checkpoints (SCHEMATIC adapts its\n\
         placement), so the intermittency overhead shrinks — the effect\n\
         behind the paper's Figure 8."
    );
    Ok(())
}
