//! Quickstart: compile a tiny program with SCHEMATIC and run it on the
//! intermittent emulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use schematic_repro::emu::{Machine, RunConfig};
use schematic_repro::energy::{CostTable, Energy};
use schematic_repro::ir::parse_module;
use schematic_repro::schematic::{compile, SchematicConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A program in the textual IR: the paper's motivating example —
    //    sum the elements of an array (§II-A).
    let module = parse_module(
        r#"
module "motivating"

var @array : 64 = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
var @sum : 1

func @main(0) {
entry:
  r0 = mov 0
  store @sum, 0
  br loop
loop: [max_iters=65]
  r1 = cmp.sge r0, 64
  condbr r1, exit, body
body:
  r2 = load @array[r0]
  r3 = load @sum
  r4 = add r3, r2
  store @sum, r4
  r0 = add r0, 1
  br loop
exit:
  r5 = load @sum
  ret r5
}
"#,
    )?;

    // 2. Platform: MSP430FR5969-like cost model, a capacitor worth
    //    10 000 cycles of computation, 2 KB of volatile memory.
    let table = CostTable::msp430fr5969();
    let tbpf = 10_000u64;
    let eb = Energy::from_pj(table.cpu_pj_per_cycle) * tbpf;
    let config = SchematicConfig::new(eb);

    // 3. Compile: joint checkpoint placement + VM/NVM allocation.
    let compiled = compile(&module, &table, &config)?;
    println!(
        "compiled: {} checkpoint(s), worst interval {} (EB = {})",
        compiled.instrumented.checkpoints.len(),
        compiled.report.max_interval,
        eb,
    );

    // 4. Run under intermittent power: a failure every `tbpf` cycles.
    let out = Machine::new(&compiled.instrumented, &table, RunConfig::periodic(tbpf)).run()?;
    println!(
        "result = {:?} (expected 55), status = {:?}",
        out.result, out.status
    );
    println!(
        "power failures survived: {}, checkpoints committed: {}",
        out.metrics.power_failures, out.metrics.checkpoints_committed
    );
    println!(
        "energy: computation {} + save {} + restore {} + re-execution {}",
        out.metrics.computation, out.metrics.save, out.metrics.restore, out.metrics.reexecution
    );
    assert_eq!(out.result, Some(55));
    assert_eq!(out.metrics.reexecution, Energy::ZERO); // forward progress!
    Ok(())
}
