//! Compare all five intermittency-management techniques on one kernel:
//! the mini version of the paper's Figure 6 experiment, showing who wins
//! and where the energy goes.
//!
//! ```text
//! cargo run --release --example technique_comparison [kernel] [tbpf]
//! ```

use schematic_repro::benchsuite;
use schematic_repro::emu::{Machine, RunConfig};
use schematic_repro::energy::{CostTable, Energy};
use schematic_repro::schematic::{compile, SchematicConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let kernel = args.next().unwrap_or_else(|| "crc".into());
    let tbpf: u64 = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10_000);

    let bench = benchsuite::by_name(&kernel)
        .unwrap_or_else(|| panic!("unknown kernel '{kernel}' (try: crc, aes, fft, ...)"));
    let module = (bench.build)(1);
    let expected = (bench.oracle)(1);
    let table = CostTable::msp430fr5969();
    let eb = Energy::from_pj(table.cpu_pj_per_cycle) * tbpf;
    let svm = 2048;

    println!("kernel `{kernel}`, TBPF = {tbpf} cycles, EB = {eb}, SVM = {svm} B\n");
    println!(
        "{:>10} {:>12} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "technique", "computation", "save", "restore", "re-exec", "total", "verdict"
    );

    // The four baselines.
    for tech in schematic_repro::baselines::all() {
        if !tech.supports(&module, svm) {
            println!("{:>10} {:>12}", tech.name(), "data does not fit the VM");
            continue;
        }
        match tech.compile(&module, &table, eb) {
            Err(e) => println!("{:>10} compile error: {e}", tech.name()),
            Ok(im) => report(tech.name(), &im, &table, tbpf, expected)?,
        }
    }
    // SCHEMATIC.
    let compiled = compile(&module, &table, &SchematicConfig::new(eb))?;
    report("Schematic", &compiled.instrumented, &table, tbpf, expected)?;
    Ok(())
}

fn report(
    name: &str,
    im: &schematic_repro::emu::InstrumentedModule,
    table: &CostTable,
    tbpf: u64,
    expected: i32,
) -> Result<(), Box<dyn std::error::Error>> {
    let out = Machine::new(im, table, RunConfig::periodic(tbpf)).run()?;
    let verdict = if out.completed() && out.result == Some(expected) {
        "ok"
    } else {
        "failed"
    };
    let m = &out.metrics;
    println!(
        "{:>10} {:>12.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>10}",
        name,
        m.computation.as_uj(),
        m.save.as_uj(),
        m.restore.as_uj(),
        m.reexecution.as_uj(),
        m.total_energy().as_uj(),
        verdict,
    );
    Ok(())
}
