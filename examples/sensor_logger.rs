//! A realistic battery-free sensing workload, built with the IR builder
//! API: read a (synthetic) sensor, smooth it with an exponential moving
//! average, histogram the readings, and keep a running checksum — the
//! kind of long-running accumulation loop the paper's intro motivates.
//!
//! ```text
//! cargo run --release --example sensor_logger
//! ```

use schematic_repro::emu::{Machine, RunConfig};
use schematic_repro::energy::{CostTable, Energy};
use schematic_repro::ir::{BinOp, CmpOp, FunctionBuilder, ModuleBuilder, Variable};
use schematic_repro::schematic::{compile, SchematicConfig};

const SAMPLES: i32 = 512;

fn build_sensor_app() -> schematic_repro::ir::Module {
    let mut mb = ModuleBuilder::new("sensor_logger");
    // A pre-recorded trace stands in for the ADC (the emulator has no
    // peripherals; the paper's benchmarks don't use them either, §IV-A).
    let trace: Vec<i32> = (0..SAMPLES).map(|i| 512 + ((i * 37) % 199) - 99).collect();
    let sensor = mb.var(Variable::array("sensor_trace", SAMPLES as usize).with_init(trace));
    let ema = mb.var(Variable::scalar("ema"));
    let hist = mb.var(Variable::array("histogram", 16));
    let checksum = mb.var(Variable::scalar("checksum"));

    let mut f = FunctionBuilder::new("main", 0);
    let loop_bb = f.new_block("sample_loop");
    let body = f.new_block("body");
    let exit = f.new_block("exit");

    let i = f.copy(0);
    f.store_scalar(ema, 512);
    f.store_scalar(checksum, 0);
    f.br(loop_bb);

    f.switch_to(loop_bb);
    f.set_max_iters(loop_bb, SAMPLES as u64 + 1);
    let done = f.cmp(CmpOp::SGe, i, SAMPLES);
    f.cond_br(done, exit, body);

    f.switch_to(body);
    // sample = sensor_trace[i]
    let sample = f.load_idx(sensor, i);
    // ema = (7*ema + sample) / 8   (integer EMA)
    let e0 = f.load_scalar(ema);
    let e7 = f.bin(BinOp::Mul, e0, 7);
    let es = f.bin(BinOp::Add, e7, sample);
    let e1 = f.bin(BinOp::AShr, es, 3);
    f.store_scalar(ema, e1);
    // histogram[ema >> 6 & 15] += 1
    let bucket0 = f.bin(BinOp::AShr, e1, 6);
    let bucket = f.bin(BinOp::And, bucket0, 15);
    let h = f.load_idx(hist, bucket);
    let h1 = f.bin(BinOp::Add, h, 1);
    f.store_idx(hist, bucket, h1);
    // checksum = rotl(checksum, 1) ^ ema
    let c = f.load_scalar(checksum);
    let cl = f.bin(BinOp::Shl, c, 1);
    let ch = f.bin(BinOp::LShr, c, 31);
    let cr = f.bin(BinOp::Or, cl, ch);
    let cx = f.bin(BinOp::Xor, cr, e1);
    f.store_scalar(checksum, cx);
    let i2 = f.bin(BinOp::Add, i, 1);
    f.copy_to(i, i2);
    f.br(loop_bb);

    f.switch_to(exit);
    let out = f.load_scalar(checksum);
    f.ret(Some(out.into()));

    let main = mb.func(f.finish());
    mb.finish(main)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = build_sensor_app();
    let table = CostTable::msp430fr5969();

    // A weak harvester: the capacitor only buys ~4000 cycles per charge.
    let tbpf = 4_000u64;
    let eb = Energy::from_pj(table.cpu_pj_per_cycle) * tbpf;
    let compiled = compile(&module, &table, &SchematicConfig::new(eb))?;

    // Reference run on continuous power.
    let golden = Machine::new(&compiled.instrumented, &table, RunConfig::default()).run()?;

    // Intermittent run: the logger must survive hundreds of outages and
    // produce the identical checksum.
    let out = Machine::new(&compiled.instrumented, &table, RunConfig::periodic(tbpf)).run()?;
    println!("continuous checksum : {:?}", golden.result);
    println!("intermittent checksum: {:?}", out.result);
    println!(
        "outages survived: {} | checkpoints: {} | sleeps: {}",
        out.metrics.power_failures, out.metrics.checkpoints_committed, out.metrics.sleep_events
    );
    println!(
        "hot data in VM: ema/checksum — {:.0} % of accesses hit VM",
        100.0 * out.metrics.vm_access_fraction()
    );
    assert_eq!(out.result, golden.result);
    assert_eq!(out.metrics.reexecution, Energy::ZERO);
    Ok(())
}
